"""A long-running asyncio HTTP/JSON service over one streaming engine.

``python -m repro serve`` builds (or loads) a world, starts ingesting its
replay stream in the background, and answers queries over plain HTTP the
whole time — the serving posture AMON runs in production, scaled down to
the repro.  Everything is standard library: ``asyncio.start_server`` plus
a hand-rolled HTTP/1.1 exchange, because the container ships no aiohttp
and the protocol surface here is tiny.

Connections are **keep-alive** by default (HTTP/1.1 semantics: persistent
unless the client sends ``Connection: close``; an HTTP/1.0 client must
opt in with ``Connection: keep-alive``), so a load generator pays the
TCP handshake once per client instead of once per request; the drain
summary reports connections opened next to requests served so the reuse
ratio is visible.

Responses are cached **per version token**: each cached body remembers
the engine version it was rendered at and is revalidated on every
lookup.  Sketch-backed top queries key on their source's mutation
counter (``StreamEngine.query_version``), so a darknet-only batch —
most of a replay — leaves them cached; everything else keys on the
per-record generation, so between ingest batches every target's JSON
body is rendered at most once and served byte-identically.  Hits still
advance the served/rejected counters.

Consistency model
-----------------
The server and the ingest task share one event loop.  Ingestion applies
records in synchronous batches — :meth:`StreamEngine.ingest` never awaits
— and only yields to the loop *between* batches, so every request handler
runs against an engine that is between-records: snapshots are internally
consistent by construction (no torn reads), which the service tests
verify by cross-checking the redundant global counters inside each
response.  A sharded engine keeps the same contract: the service calls
its ``barrier()`` at each batch boundary, and fork-mode engines drive
whole rounds via ``ingest_step`` inside the same synchronous step.

Lifecycle
---------
On start the service prints one JSON line (``{"serving": ...}``) to
stdout so callers can discover the bound (possibly ephemeral) port.
SIGTERM and SIGINT drain cleanly: stop accepting, cancel ingestion at a
batch boundary, close open connections, print ``{"drained": ...}``, exit
0 — the no-orphan discipline the supervision tests enforce elsewhere.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from itertools import islice
from urllib.parse import parse_qsl, urlsplit

from repro.stream.ingest import QUERY_NAMES

__all__ = ["StreamService", "serve_world"]

_MAX_REQUEST_BYTES = 16384


def _dumps(body):
    """Compact JSON (no separator padding): the bodies are machine-read,
    and the windows queries render kilobytes per response."""
    return json.dumps(body, separators=(",", ":"))

#: Response-cache entry cap: distinct well-formed targets number ~a
#: dozen, so growth beyond this means a client is probing — serve those
#: uncached rather than letting them grow the map.
_MAX_CACHED_TARGETS = 256


class StreamService:
    """One engine, one record iterator, one asyncio server."""

    def __init__(
        self,
        engine,
        records,
        host="127.0.0.1",
        port=0,
        batch=256,
        pace=0.0,
        keepalive=True,
    ):
        if batch < 1:
            raise ValueError("batch must be >= 1")
        self.engine = engine
        self.records = iter(records)
        self.host = host
        self.port = int(port)
        self.batch = int(batch)
        self.pace = float(pace)
        self.keepalive = bool(keepalive)
        self.server = None
        self.ingest_task = None
        self.ingest_done = False
        self.ingest_seconds = 0.0
        self.requests_served = 0
        self.requests_rejected = 0
        self.connections_opened = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self._response_cache = {}
        self._token_fns = {}
        self._connections = set()
        self._shutdown = asyncio.Event()

    # -- lifecycle -----------------------------------------------------------

    async def start(self):
        """Bind the server and kick off background ingestion."""
        self.server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self.server.sockets[0].getsockname()[1]
        self.ingest_task = asyncio.create_task(self._ingest())
        return self

    async def _ingest(self):
        started = time.monotonic()
        try:
            if getattr(self.engine, "drives_ingest", False):
                # Fork-mode sharded engine: the workers enumerate the
                # replay themselves; each step is one bounded round.
                while True:
                    if self.engine.ingest_step(self.batch):
                        self.engine.close()
                        self.ingest_done = True
                        return
                    await asyncio.sleep(self.pace)
            barrier = getattr(self.engine, "barrier", None)
            ingest_many = self.engine.ingest_many
            records, batch = self.records, self.batch
            while True:
                chunk = list(islice(records, batch))
                if chunk:
                    ingest_many(chunk)
                if barrier is not None:
                    # Sharded in-process engine: propagate the watermark
                    # to blocks that saw no records this batch.
                    barrier()
                if len(chunk) < batch:
                    self.engine.close()
                    self.ingest_done = True
                    return
                # Yield between synchronous batches: this await is the
                # only point queries can interleave with ingestion.
                await asyncio.sleep(self.pace)
        finally:
            self.ingest_seconds = time.monotonic() - started

    def request_shutdown(self):
        self._shutdown.set()

    async def serve_until_shutdown(self, install_signals=True):
        """Run until SIGTERM/SIGINT or :meth:`request_shutdown`; drain."""
        loop = asyncio.get_running_loop()
        if install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(signum, self._shutdown.set)
        try:
            await self._shutdown.wait()
        finally:
            await self.stop()
            if install_signals:
                for signum in (signal.SIGTERM, signal.SIGINT):
                    loop.remove_signal_handler(signum)

    async def stop(self):
        """Stop accepting, cancel ingestion at a batch boundary, close
        every connection (idle keep-alive readers included)."""
        if self.ingest_task is not None and not self.ingest_task.done():
            self.ingest_task.cancel()
            try:
                await self.ingest_task
            except asyncio.CancelledError:
                pass
        if self.server is not None:
            self.server.close()
        for writer in list(self._connections):
            writer.close()
        if self.server is not None:
            await self.server.wait_closed()

    def describe(self):
        out = {
            "host": self.host,
            "port": self.port,
            "queries": list(QUERY_NAMES),
            "batch": self.batch,
            "pace": self.pace,
            "keepalive": self.keepalive,
        }
        pool_info = getattr(self.engine, "pool_info", None)
        if pool_info is not None:
            out["shards"] = pool_info
        return out

    def drain_summary(self):
        summary = {
            "requests_served": self.requests_served,
            "requests_rejected": self.requests_rejected,
            "connections_opened": self.connections_opened,
            "response_cache": {"hits": self.cache_hits, "misses": self.cache_misses},
            "records_seen": self.engine.records_seen,
            "ingest_done": self.ingest_done,
            "ingest_seconds": round(self.ingest_seconds, 4),
            "balanced": self.engine.balanced,
        }
        pool_info = getattr(self.engine, "pool_info", None)
        if pool_info is not None:
            summary["shards"] = pool_info
        return summary

    # -- HTTP exchanges ------------------------------------------------------

    async def _handle(self, reader, writer):
        self.connections_opened += 1
        self._connections.add(writer)
        try:
            while True:
                exchange = await self._respond(reader)
                if exchange is None:
                    break  # clean EOF between requests
                keep, status, payload = exchange
                keep = keep and self.keepalive
                head = (
                    f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                    "Content-Type: application/json\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    f"Connection: {'keep-alive' if keep else 'close'}\r\n\r\n"
                ).encode()
                writer.write(head + payload)
                await writer.drain()
                if not keep:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.LimitOverrunError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _respond(self, reader):
        """Read one request; returns ``(keep_alive, status, payload)`` or
        ``None`` on a clean end-of-connection."""
        try:
            request_line = await reader.readline()
        except (ValueError, ConnectionResetError):
            self.requests_rejected += 1
            return False, 400, _dumps({"error": "unreadable request"}).encode()
        if not request_line:
            return None
        parts = request_line.decode("latin-1", "replace").split()
        if len(parts) < 2:
            self.requests_rejected += 1
            return False, 400, _dumps({"error": "malformed request line"}).encode()
        method, target = parts[0], parts[1]
        version = parts[2] if len(parts) > 2 else "HTTP/1.0"
        # Drain headers (bounded), watching for the Connection token.
        # Clients send the head in one segment, so these reads are served
        # from the buffered data without extra loop wake-ups.
        connection = None
        drained = 0
        while drained < _MAX_REQUEST_BYTES:
            line = await reader.readline()
            drained += len(line)
            if line in (b"\r\n", b"\n", b""):
                break
            header = line.decode("latin-1", "replace").strip().lower()
            if header.startswith("connection:"):
                connection = header.split(":", 1)[1].strip()
        keep = (
            connection == "keep-alive"
            if version != "HTTP/1.1"
            else connection != "close"
        )
        if method != "GET":
            self.requests_rejected += 1
            body = {"error": f"method {method} not allowed (GET only)"}
            return keep, 405, _dumps(body).encode()
        status, payload = self._response_for(target)
        return keep, status, payload

    def _token_fn_for(self, target):
        """The zero-argument version probe for ``target``'s cache entry.

        Query targets of an engine exposing ``query_version`` validate
        against that (per-source mutation counters for the sketch tops);
        everything else validates against the global generation.  A
        ``None`` token marks the target uncacheable.
        """
        engine = self.engine
        query_version = getattr(engine, "query_version", None)
        if query_version is not None:
            path = urlsplit(target).path.rstrip("/")
            if path.startswith("/query/"):
                name = path[len("/query/"):]
                return lambda: query_version(name)
        if getattr(engine, "generation", None) is None:
            return lambda: None
        return lambda: ("g", engine.generation)

    def _response_for(self, target):
        """The rendered response, served from the cache while the
        engine state the target reads is unchanged.

        Each entry remembers the version token it was rendered at; a
        lookup re-probes the token and re-renders on mismatch, so stale
        entries are replaced in place (no global clear on generation
        moves — a capture-keyed top answer survives darknet batches).
        """
        token_fn = self._token_fns.get(target)
        if token_fn is None:
            token_fn = self._token_fn_for(target)
            if len(self._token_fns) < _MAX_CACHED_TARGETS:
                self._token_fns[target] = token_fn
        token = token_fn()
        entry = self._response_cache.get(target)
        if entry is None or token is None or entry[0] != token:
            self.cache_misses += 1
            status, body = self._route(target)
            entry = (token, status, _dumps(body).encode())
            if token is not None and (
                target in self._response_cache
                or len(self._response_cache) < _MAX_CACHED_TARGETS
            ):
                self._response_cache[target] = entry
        else:
            self.cache_hits += 1
        _token, status, payload = entry
        if status == 200:
            self.requests_served += 1
        else:
            self.requests_rejected += 1
        return status, payload

    def _route(self, target):
        url = urlsplit(target)
        path = url.path.rstrip("/") or "/"
        params = dict(parse_qsl(url.query))
        if path == "/health":
            return 200, {
                "ok": True,
                "records_seen": self.engine.records_seen,
                "ingest_done": self.ingest_done,
                "watermark": self.engine.watermark,
            }
        if path == "/stats":
            return 200, self.engine.snapshot()
        if path.startswith("/query/"):
            name = path[len("/query/"):]
            try:
                result = self.engine.query(name, **params)
            except KeyError as exc:
                return 400, {"error": str(exc.args[0])}
            except (TypeError, ValueError) as exc:
                return 400, {"error": f"bad query parameters: {exc}"}
            return 200, {"query": name, "result": result}
        return 404, {"error": f"no route {path!r} (try /health, /stats, /query/<name>)"}


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
}


async def serve_world(
    world,
    host="127.0.0.1",
    port=0,
    skew=0.0,
    batch=256,
    pace=0.0,
    shards=1,
    keepalive=True,
):
    """Build engine + replay for ``world``, serve until SIGTERM/SIGINT.

    ``--shards N`` (N > 1) runs the partitioned engine: N fork workers
    over the sixteen logical blocks when the pool gate engages, the same
    blocks in-process (with the veto reason recorded) when it does not.
    Answers are byte-identical either way, and identical to ``--shards
    1``'s single engine.

    Prints the ``{"serving": ...}`` discovery line on start and the
    ``{"drained": ...}`` summary on exit; returns 0 (the CLI exit code).
    """
    from repro.stream.ingest import StreamEngine
    from repro.stream.partition import ShardedStream
    from repro.stream.replay import replay_plan, replay_records

    plan = replay_plan(world)
    if shards > 1:
        engine = ShardedStream.for_world(world, shards=shards, skew=skew)
        records = () if engine.drives_ingest else replay_records(world)
    else:
        engine = StreamEngine.for_world(world, plan=plan, skew=skew)
        records = replay_records(world)
    service = StreamService(
        engine,
        records,
        host=host,
        port=port,
        batch=batch,
        pace=pace,
        keepalive=keepalive,
    )
    await service.start()
    print(json.dumps({"serving": {**service.describe(), "plan": plan["expected"]}}), flush=True)
    await service.serve_until_shutdown()
    summary = service.drain_summary()
    shutdown = getattr(engine, "shutdown", None)
    if shutdown is not None:
        shutdown()
    print(json.dumps({"drained": summary}), flush=True)
    return 0
