"""Table 1: per-sample amplifier and victim populations, plus §3.1 churn.

Paper: amplifiers fall 1.405M -> 106K while their end-host share roughly
doubles (18.5% -> 33.5%) and IPs-per-block falls from 22 toward 4; victims
grow 50K -> ~170K (peaking in March) with end-host share rising from ~31%
to ~50%, at only 3-5 IPs per routed block.  Churn: 2.17M unique amplifier
IPs over 15 weeks, ~60% present in the first sample, ~half seen only once.
"""

from repro.analysis import amplifier_counts, churn_report
from repro.net import aggregate_counts
from repro.reporting import render_table1
from repro.util import format_sim


def build_table1(parsed_monlist, victim_report, table, pbl):
    amp_rows = amplifier_counts(parsed_monlist, table, pbl)
    victim_rows = []
    for sample in victim_report.samples:
        ips = sample.victim_ips()
        agg = aggregate_counts(ips, table)
        end_hosts = pbl.end_host_count(ips)
        victim_rows.append(
            {
                "ips": agg.ips,
                "blocks": agg.blocks,
                "asns": agg.asns,
                "end_host_fraction": end_hosts / agg.ips if agg.ips else 0.0,
                "ips_per_block": agg.ips_per_block,
            }
        )
    return amp_rows, victim_rows


def test_table1_populations(benchmark, world, parsed_monlist, victim_report):
    amp_rows, victim_rows = benchmark(
        build_table1, parsed_monlist, victim_report, world.table, world.pbl
    )

    # Amplifier side: deep decline, end-host share up, density down.
    assert amp_rows[-1].ips < 0.2 * amp_rows[0].ips
    assert amp_rows[-1].end_host_fraction > 1.25 * amp_rows[0].end_host_fraction
    assert amp_rows[-1].ips_per_block < amp_rows[0].ips_per_block

    # Victim side: strong growth from January; far sparser per block than
    # the amplifier pool started out.
    victim_ips = [r["ips"] for r in victim_rows]
    assert max(victim_ips) > 3 * victim_ips[0]
    assert victim_rows[0]["ips_per_block"] < amp_rows[0].ips_per_block

    # Victim end-host share starts lower than ~half and rises.
    assert victim_rows[-1]["end_host_fraction"] >= victim_rows[0]["end_host_fraction"] * 0.8

    # §3.1 churn.
    churn = churn_report(parsed_monlist)
    assert 0.5 < churn.first_sample_share < 0.92  # paper: ~60%
    assert churn.seen_once_fraction > 0.15  # paper: ~half
    assert churn.discovers_new_every_sample

    print()
    print(render_table1(amp_rows, victim_rows))
    print(
        f"churn: unique={churn.total_unique} first-share={churn.first_sample_share:.2f} "
        f"seen-once={churn.seen_once_fraction:.2f}"
    )
