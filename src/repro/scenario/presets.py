"""Named world presets.

Scale is the fraction of the real Internet's populations the world carries;
build time and memory grow roughly linearly with it.
"""

from dataclasses import dataclass

__all__ = ["Preset", "PRESETS", "resolve_preset"]


@dataclass(frozen=True)
class Preset:
    name: str
    scale: float
    description: str


PRESETS = {
    "tiny": Preset("tiny", 0.0005, "~700 amplifiers; seconds to build; CI-sized"),
    "small": Preset("small", 0.001, "~1.4K amplifiers; the test-suite world"),
    "default": Preset("default", 0.002, "~2.8K amplifiers; the benchmark world"),
    "large": Preset("large", 0.005, "~7K amplifiers; smoother time series"),
    "xl": Preset("xl", 0.01, "~14K amplifiers; minutes to build"),
}


def resolve_preset(name):
    """Look up a preset by name; raises ``KeyError`` with choices listed."""
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(f"unknown preset {name!r}; choose from {sorted(PRESETS)}") from None
