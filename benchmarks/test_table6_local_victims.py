"""Table 6: the worst victims at Merit and CSU.

Paper: Merit's top victims received 1.6-5.9 TB each over up to ~166 hours
through 4-42 amplifiers, spread across ASes on several continents; CSU's
top victims include the OVH-like French hoster.  Volumes scale with the
simulated attack load; the multi-amplifier, multi-day structure and the
AS/country diversity are the shape under test.
"""

from repro.analysis import top_victim_table
from repro.reporting import render_table6


def test_table6_local_victims(benchmark, world):
    merit_rows = benchmark(
        top_victim_table, world.isp.sites["merit"], world.table, world.geo
    )
    frgp_rows = top_victim_table(world.isp.sites["frgp"], world.table, world.geo)

    assert merit_rows
    top = merit_rows[0]
    assert top["gb"] > 0.2
    assert top["amplifiers"] >= 2  # coordinated multi-amplifier attacks
    assert top["duration_hours"] > 1
    assert top["country"]

    # Victim ASes are globally spread: more than one country in the top-5s.
    countries = {r["country"] for r in merit_rows} | {r["country"] for r in frgp_rows}
    assert len(countries) >= 2

    print()
    print(render_table6("Merit", merit_rows))
    print()
    print(render_table6("FRGP/CSU", frgp_rows))
