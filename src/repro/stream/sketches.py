"""Bounded-memory stream summaries: count-min and space-saving top-K.

Both structures follow the AMON playbook: heavy-hitter state that fits in
a few kilobytes regardless of stream length, with *declared* error bounds
the conformance harness can check against batch ground truth —

* :class:`CountMinSketch` over-estimates only: for any key,
  ``true <= estimate <= true + epsilon * total_weight`` with probability
  ``1 - delta`` (Cormode & Muthukrishnan's bound, ``width = ceil(e/eps)``,
  ``depth = ceil(ln(1/delta))``);
* :class:`SpaceSavingTopK` tracks at most ``capacity`` keys and reports a
  per-key over-estimate ``error``; any key whose true weight exceeds
  ``total_weight / capacity`` is guaranteed present.

Both merge: ``merge(a, b)`` is commutative and keeps the bounds additive
(the property tests in ``tests/test_stream_properties.py`` pin this).
Hashing is deterministic (BLAKE2b with a per-row salt) so two engines fed
the same stream agree byte-for-byte — the same determinism contract the
batch pipeline holds at any ``--jobs``.

The count-min cell matrix is a NumPy array rather than nested lists so
the sharded reduction path can fold sixteen per-block sketches per query
generation at array-add speed; integer-weight sketches stay ``int64``
(exact cell sums), and the first float weight promotes the matrix to
``float64`` — cell adds are then subject to float rounding like any
float accumulator, which is why only the byte-volume sketch carries
float weights and its conformance check a relative tolerance.
"""

from __future__ import annotations

import hashlib
import heapq
import math
import struct

import numpy as np

__all__ = ["CountMinSketch", "SpaceSavingTopK"]

_KEY_PACK = struct.Struct(">q")


def _hash_row(key, salt):
    """Deterministic 64-bit hash of an int key under one row's salt."""
    digest = hashlib.blake2b(
        _KEY_PACK.pack(int(key)), digest_size=8, salt=salt
    ).digest()
    return int.from_bytes(digest, "big")


#: Memoized per-key cell columns, shared across sketches of the same
#: geometry: the BLAKE2b row hashes of a key are pure functions of
#: ``(key, width, depth)``, and the serving path re-touches the same IPs
#: every window close, so caching turns the dominant sketch cost (five
#: hashes per add) into one dict lookup.  Bounded by the number of
#: distinct keys the process ever sketches.
_CELL_CACHE = {}


def _cells_for(key, width, depth, salts):
    cached = _CELL_CACHE.get((key, width, depth))
    if cached is None:
        cached = tuple(_hash_row(key, salts[d]) % width for d in range(depth))
        _CELL_CACHE[(key, width, depth)] = cached
    return cached


class CountMinSketch:
    """A count-min sketch over integer keys with numeric weights.

    ``estimate(key)`` never under-counts; the over-count is bounded by
    ``epsilon * total_weight`` with probability ``1 - delta``.  Weights
    may be ints (exact totals) or floats (byte volumes).
    """

    __slots__ = ("epsilon", "delta", "width", "depth", "rows", "total", "_salts")

    def __init__(self, epsilon=0.005, delta=0.01):
        if not 0.0 < epsilon < 1.0 or not 0.0 < delta < 1.0:
            raise ValueError("epsilon and delta must be in (0, 1)")
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        self.width = max(1, math.ceil(math.e / epsilon))
        self.depth = max(1, math.ceil(math.log(1.0 / delta)))
        self.rows = np.zeros((self.depth, self.width), dtype=np.int64)
        self.total = 0
        self._salts = [b"cms-row-%02d" % d for d in range(self.depth)]

    def _cells(self, key):
        cols = _cells_for(int(key), self.width, self.depth, self._salts)
        for d in range(self.depth):
            yield d, cols[d]

    def add(self, key, weight=1):
        if weight < 0:
            raise ValueError("count-min supports non-negative weights only")
        if isinstance(weight, float) and self.rows.dtype != np.float64:
            self.rows = self.rows.astype(np.float64)
        cols = _cells_for(int(key), self.width, self.depth, self._salts)
        for d in range(self.depth):
            self.rows[d, cols[d]] += weight
        self.total += weight

    def add_many(self, keys, weights):
        """Vectorized :meth:`add` over parallel sequences.

        Equivalent to ``for k, w in zip(keys, weights): add(k, w)`` —
        cell sums are order-free for ints, and the float path accumulates
        via ``np.add.at`` in sequence order — but pays the row update as
        one scatter-add per row instead of one Python loop per key.
        """
        if not keys:
            return
        width, depth, salts = self.width, self.depth, self._salts
        cols = np.array(
            [_cells_for(int(k), width, depth, salts) for k in keys], dtype=np.int64
        )
        w = np.asarray(weights)
        if w.min() < 0:
            raise ValueError("count-min supports non-negative weights only")
        if w.dtype.kind == "f" and self.rows.dtype != np.float64:
            self.rows = self.rows.astype(np.float64)
        for d in range(depth):
            np.add.at(self.rows[d], cols[:, d], w)
        total = w.sum()
        self.total += total.item() if w.dtype.kind == "f" else int(total)

    def estimate(self, key):
        cols = _cells_for(int(key), self.width, self.depth, self._salts)
        return min(self.rows[d, cols[d]] for d in range(self.depth)).item()

    def estimate_many(self, keys):
        """Vectorized :meth:`estimate`: one gather + row-min for all
        ``keys`` (the top-query render asks for every ranked key)."""
        keys = list(keys)
        if not keys:
            return []
        width, depth, salts = self.width, self.depth, self._salts
        cols = np.array(
            [_cells_for(int(k), width, depth, salts) for k in keys], dtype=np.int64
        )
        vals = self.rows[np.arange(depth), cols]
        return vals.min(axis=1).tolist()

    def error_bound(self):
        """The declared additive over-count ceiling at the current total."""
        return self.epsilon * self.total

    def compatible_with(self, other):
        return (
            isinstance(other, CountMinSketch)
            and self.width == other.width
            and self.depth == other.depth
        )

    def merge(self, other):
        """A new sketch summarizing both streams (commutative; bounds add
        because totals add and cells add)."""
        if not self.compatible_with(other):
            raise ValueError("cannot merge count-min sketches of different geometry")
        out = CountMinSketch(self.epsilon, self.delta)
        out.rows = self.rows + other.rows
        out.total = self.total + other.total
        return out

    def copy(self):
        out = CountMinSketch(self.epsilon, self.delta)
        out.rows = self.rows.copy()
        out.total = self.total
        return out

    def __eq__(self, other):
        return (
            self.compatible_with(other)
            and self.total == other.total
            and bool(np.array_equal(self.rows, other.rows))
        )

    def as_dict(self):
        return {
            "epsilon": self.epsilon,
            "delta": self.delta,
            "width": self.width,
            "depth": self.depth,
            "total": self.total,
            "error_bound": self.error_bound(),
        }

    def __getstate__(self):
        return (self.epsilon, self.delta, self.rows, self.total)

    def __setstate__(self, state):
        epsilon, delta, rows, total = state
        self.__init__(epsilon, delta)
        self.rows = rows
        self.total = total


class SpaceSavingTopK:
    """Metwally et al.'s space-saving heavy hitters over integer keys.

    At most ``capacity`` keys are tracked; each carries ``(count, error)``
    where ``count`` over-estimates the true weight by at most ``error``.
    Any key with true weight above ``total / capacity`` is guaranteed
    present.  Eviction and reporting tie-break deterministically on
    ``(count, -key)`` so equal streams produce equal summaries.
    """

    __slots__ = ("capacity", "counters", "errors", "total", "_heap")

    def __init__(self, capacity=64):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.counters = {}
        self.errors = {}
        self.total = 0
        # Lazy min-heap of (count, -key, key): entries go stale when a
        # counter is bumped or evicted and are discarded on pop, so
        # finding the eviction victim is O(log n) amortized instead of a
        # linear scan of every counter per eviction.
        self._heap = []

    def _rebuild_heap(self):
        self._heap = [(c, -k, k) for k, c in self.counters.items()]
        heapq.heapify(self._heap)

    def _weakest(self):
        """The tracked key cheapest to evict (deterministic tie-break:
        min by ``(count, -key)``, exactly the heap order)."""
        heap, counters = self._heap, self.counters
        while heap:
            count, _nk, key = heap[0]
            if counters.get(key) == count:
                return key
            heapq.heappop(heap)
        self._rebuild_heap()
        return self._heap[0][2]

    def add(self, key, weight=1):
        if weight < 0:
            raise ValueError("space-saving supports non-negative weights only")
        key = int(key)
        self.total += weight
        counters = self.counters
        if key in counters:
            count = counters[key] + weight
            counters[key] = count
            heapq.heappush(self._heap, (count, -key, key))
            return
        if len(counters) < self.capacity:
            counters[key] = weight
            self.errors[key] = 0
            heapq.heappush(self._heap, (weight, -key, key))
            return
        victim = self._weakest()
        floor = counters.pop(victim)
        self.errors.pop(victim)
        # The newcomer inherits the evicted counter as its over-estimate.
        counters[key] = floor + weight
        self.errors[key] = floor
        heapq.heappush(self._heap, (floor + weight, -key, key))
        if len(self._heap) > 8 * self.capacity:
            self._rebuild_heap()

    def add_many(self, keys, weights):
        """Sequence-equivalent to ``for k, w in zip(keys, weights):
        add(k, w)`` — same evictions in the same order — with the
        attribute and method churn hoisted out of the loop.  This is the
        window-close fold path, which adds a whole window's per-key
        totals at once."""
        counters = self.counters
        errors = self.errors
        heap = self._heap
        capacity = self.capacity
        push = heapq.heappush
        total = 0
        for key, weight in zip(keys, weights):
            if weight < 0:
                raise ValueError("space-saving supports non-negative weights only")
            key = int(key)
            total += weight
            count = counters.get(key)
            if count is not None:
                count += weight
                counters[key] = count
                push(heap, (count, -key, key))
                continue
            if len(counters) < capacity:
                counters[key] = weight
                errors[key] = 0
                push(heap, (weight, -key, key))
                continue
            victim = self._weakest()
            heap = self._heap  # _weakest may have rebuilt it
            floor = counters.pop(victim)
            errors.pop(victim)
            counters[key] = floor + weight
            errors[key] = floor
            push(heap, (floor + weight, -key, key))
            if len(heap) > 8 * capacity:
                self._rebuild_heap()
                heap = self._heap
        self.total += total

    def top(self, n=None):
        """``[(key, count, error)]`` descending by count (ties: lower key
        first, so output is deterministic)."""
        ranked = sorted(self.counters, key=lambda k: (-self.counters[k], k))
        if n is not None:
            ranked = ranked[:n]
        return [(k, self.counters[k], self.errors[k]) for k in ranked]

    def guarantee_threshold(self):
        """True weight above this is guaranteed to be tracked."""
        return self.total / self.capacity

    def merge(self, other):
        """A new summary of both streams (commutative by construction).

        Keys present in one side only inherit the other side's weakest
        counter as extra over-estimate — the standard space-saving merge —
        then the union is trimmed back to ``capacity`` deterministically.
        """
        if not isinstance(other, SpaceSavingTopK) or self.capacity != other.capacity:
            raise ValueError("cannot merge space-saving summaries of different capacity")

        def floor_of(summary):
            if len(summary.counters) < summary.capacity:
                return 0
            return min(summary.counters.values())

        floor_a, floor_b = floor_of(self), floor_of(other)
        out = SpaceSavingTopK(self.capacity)
        out.total = self.total + other.total
        merged_counts, merged_errors = {}, {}
        for key in set(self.counters) | set(other.counters):
            count = error = 0
            if key in self.counters:
                count += self.counters[key]
                error += self.errors[key]
            else:
                count += floor_a
                error += floor_a
            if key in other.counters:
                count += other.counters[key]
                error += other.errors[key]
            else:
                count += floor_b
                error += floor_b
            merged_counts[key] = count
            merged_errors[key] = error
        keep = sorted(merged_counts, key=lambda k: (-merged_counts[k], k))[: self.capacity]
        out.counters = {k: merged_counts[k] for k in keep}
        out.errors = {k: merged_errors[k] for k in keep}
        out._rebuild_heap()
        return out

    def copy(self):
        out = SpaceSavingTopK(self.capacity)
        out.counters = dict(self.counters)
        out.errors = dict(self.errors)
        out.total = self.total
        out._heap = list(self._heap)
        return out

    def __eq__(self, other):
        return (
            isinstance(other, SpaceSavingTopK)
            and self.capacity == other.capacity
            and self.total == other.total
            and self.counters == other.counters
            and self.errors == other.errors
        )

    def as_dict(self, n=None):
        return {
            "capacity": self.capacity,
            "total": self.total,
            "guarantee_threshold": self.guarantee_threshold(),
            "entries": [
                {"key": k, "count": c, "error": e} for k, c, e in self.top(n)
            ],
        }
