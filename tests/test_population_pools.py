"""Tests for the host pool, victim pool, and DNS resolver pool generators."""

import pytest

from repro.net import ASRegistry, PolicyBlockList, RoutedBlockTable
from repro.ntp.constants import IMPL_XNTPD, IMPL_XNTPD_OLD
from repro.population import (
    DnsResolverPool,
    PoolParams,
    VictimParams,
    build_host_pool,
    build_victim_pool,
)
from repro.util import RngStream, date_to_sim

SCALE = 0.0015


@pytest.fixture(scope="module")
def world():
    rng = RngStream(777, "pool-test")
    registry = ASRegistry(rng.child("asn"), n_ases=1200)
    table = RoutedBlockTable(registry)
    pbl = PolicyBlockList(registry)
    hosts = build_host_pool(rng.child("hosts"), registry, pbl, PoolParams(scale=SCALE))
    victims = build_victim_pool(rng.child("victims"), registry, pbl, VictimParams(scale=SCALE))
    return registry, table, pbl, hosts, victims


def test_pool_sizes_scale(world):
    _, _, _, hosts, victims = world
    # Concurrent population ≈ 6M x scale (total host *records* exceed it:
    # DHCP chains create several records per logical end-host server).
    jan10 = date_to_sim(2014, 1, 10)
    assert hosts.host_count_alive(jan10) == pytest.approx(6_000_000 * SCALE, rel=0.3)
    assert len(hosts) >= hosts.host_count_alive(jan10)
    assert len(hosts.monlist_alive(jan10)) == pytest.approx(1_405_000 * SCALE, rel=0.15)
    assert len(victims) == pytest.approx(VictimParams().total_victims_full * SCALE, rel=0.25)


def test_monlist_pool_decays_like_fig3(world):
    _, _, _, hosts, _ = world
    jan = len(hosts.monlist_alive(date_to_sim(2014, 1, 10)))
    feb = len(hosts.monlist_alive(date_to_sim(2014, 2, 14)))
    apr = len(hosts.monlist_alive(date_to_sim(2014, 4, 18)))
    assert 0.10 < feb / jan < 0.26
    assert 0.04 < apr / jan < 0.16


def test_version_pool_decays_slowly(world):
    _, _, _, hosts, _ = world
    feb = len(hosts.version_alive(date_to_sim(2014, 2, 21)))
    apr = len(hosts.version_alive(date_to_sim(2014, 4, 18)))
    assert feb > 0
    assert 0.70 < apr / feb < 0.95


def test_version_pool_much_larger_than_monlist_in_april(world):
    _, _, _, hosts, _ = world
    apr = date_to_sim(2014, 4, 18)
    assert len(hosts.version_alive(apr)) > 5 * len(hosts.monlist_alive(apr))


def test_end_host_share_rises(world):
    _, _, _, hosts, _ = world
    jan = hosts.monlist_alive(date_to_sim(2014, 1, 10))
    apr = hosts.monlist_alive(date_to_sim(2014, 4, 18))
    eh_jan = sum(1 for h in jan if h.is_end_host) / len(jan)
    eh_apr = sum(1 for h in apr if h.is_end_host) / len(apr)
    assert 0.13 <= eh_jan <= 0.24
    assert eh_apr > eh_jan * 1.3


def test_end_hosts_live_in_pbl_space(world):
    _, _, pbl, hosts, _ = world
    for host in hosts.monlist_hosts[:300]:
        assert pbl.is_end_host(host.ip) == host.is_end_host


def test_churn_produces_new_unique_ips(world):
    _, _, _, hosts, _ = world
    initial = {h.ip for h in hosts.monlist_hosts if h.birth == 0.0}
    all_ips = {h.ip for h in hosts.monlist_hosts}
    assert len(all_ips) > 1.2 * len(initial)


def test_chain_windows_disjoint(world):
    """An end-host amplifier's DHCP leases must not overlap in time."""
    _, _, _, hosts, _ = world
    for host in hosts.monlist_hosts:
        if host.death is not None:
            assert host.death > host.birth


def test_implementation_mix(world):
    _, _, _, hosts, _ = world
    pool = hosts.monlist_hosts
    v2_only = sum(1 for h in pool if h.implementations == frozenset({IMPL_XNTPD}))
    v1_only = sum(1 for h in pool if h.implementations == frozenset({IMPL_XNTPD_OLD}))
    both = sum(1 for h in pool if len(h.implementations) == 2)
    assert v2_only > both > v1_only > 0


def test_mega_hosts_exist_with_heavy_loops(world):
    _, _, _, hosts, _ = world
    megas = hosts.mega_hosts()
    assert len(megas) >= 10
    loops = sorted((h.loop_factor for h in megas), reverse=True)
    assert loops[0] >= 1_000_000  # the 136 GB-class giga amplifier
    assert all(l >= 2 for l in loops)


def test_giga_amplifiers_in_japan(world):
    registry, _, _, hosts, _ = world
    giga = [h for h in hosts.mega_hosts() if h.loop_factor >= 25_000]
    assert len(giga) >= 9
    jp_asns = {registry.special[f"JP-NET-{i}"].asn for i in range(1, 8)}
    in_japan = [h for h in giga if h.asn in jp_asns]
    assert len(in_japan) >= 9
    assert all(h.country == "JP" for h in in_japan)


def test_background_clients_generated(world):
    _, _, _, hosts, _ = world
    for host in hosts.monlist_hosts[:100]:
        assert host.clients is not None
        assert len(host.clients) == host.base_clients
    rows = hosts.monlist_hosts[0].clients.state_at(date_to_sim(2014, 3, 1))
    for ip, port, count, first, last in rows:
        assert count >= 1
        assert first <= last


def test_table_sizes_heavy_tailed(world):
    _, _, _, hosts, _ = world
    sizes = [h.base_clients for h in hosts.monlist_hosts if not h.is_mega]
    sizes.sort()
    median = sizes[len(sizes) // 2]
    assert 1 <= median <= 15
    assert sizes[-1] == 600  # some primed-full tables exist


def test_pool_params_validation():
    with pytest.raises(ValueError):
        PoolParams(scale=0.0)
    with pytest.raises(ValueError):
        PoolParams(scale=1.5)


def test_victims_concentrated_in_top_ases(world):
    registry, _, _, _, victims = world
    from collections import Counter

    counts = Counter(v.asn for v in victims.victims)
    top = counts.most_common(1)[0]
    ovh = registry.special["HOSTING-FR-1"]
    assert top[0] == ovh.asn  # the OVH-like hoster is the top victim AS


def test_victims_have_ports_and_windows(world):
    _, _, _, _, victims = world
    for victim in victims.victims[:200]:
        assert victim.ports
        assert all(1 <= p <= 65535 for p in victim.ports)
        assert victim.active_until > victim.appear_time


def test_victim_sampling_prefers_popular(world):
    _, _, _, _, victims = world
    rng = RngStream(5, "sample")
    t = date_to_sim(2014, 2, 12)
    sampled = victims.sample_active(rng, t, 300)
    assert sampled
    assert all(v.active_at(t) for v in sampled)


def test_victim_sampling_empty_before_attacks(world):
    _, _, _, _, victims = world
    rng = RngStream(6, "sample2")
    assert victims.sample_active(rng, date_to_sim(2013, 10, 1), 10) == []


def test_dns_pool_series():
    rng = RngStream(9, "dns")
    pool = DnsResolverPool(rng, scale=0.001)
    series = pool.weekly_series(n_weeks=60, noisy=False)
    assert len(series) == 60
    first, last = series[0].count, series[-1].count
    assert last / first > 0.80  # barely declines (Fig. 10)
    with pytest.raises(ValueError):
        pool.weekly_series(n_weeks=0)


def test_dns_overlap_fraction(world):
    _, _, _, hosts, _ = world
    pool = DnsResolverPool(RngStream(9, "dns"), scale=0.001)
    overlap = pool.overlap_with_monlist(hosts.monlist_hosts)
    frac = len(overlap) / len({h.ip for h in hosts.monlist_hosts})
    assert 0.05 < frac < 0.14  # §6.2: 9.2%
