"""Normal NTP client behavior.

Legitimate clients (mode 3 pollers) matter to the reproduction because they
populate monlist tables with *non-victim* entries — the background the
victim-classification filter of §4.2 must reject.
"""

from dataclasses import dataclass

from repro.ntp.constants import MODE_CLIENT
from repro.ntp.wire import encode_mode3

__all__ = ["ClientProfile", "NtpClient", "sync_background_clients"]

#: ntpd polls between 2**6 (64 s) and 2**10 (1024 s) by default.
DEFAULT_POLL_SECONDS = 1024.0


@dataclass(frozen=True)
class ClientProfile:
    """One background client of a server: who it is and how often it polls."""

    ip: int
    port: int
    poll_interval: float
    first_poll: float

    def polls_between(self, start, end):
        """Number of polls in the half-open window (start, end]."""
        if end <= start or end < self.first_poll:
            return 0
        lo = max(start, self.first_poll - self.poll_interval)
        return max(0, int((end - self.first_poll) // self.poll_interval) - max(
            -1, int((lo - self.first_poll) // self.poll_interval)
        ))

    def last_poll_before(self, t):
        """Time of the latest poll at or before ``t``, or None."""
        if t < self.first_poll:
            return None
        k = int((t - self.first_poll) // self.poll_interval)
        return self.first_poll + k * self.poll_interval


class NtpClient:
    """A byte-level mode-3 client (used by examples and protocol tests)."""

    def __init__(self, ip, port=123):
        self.ip = ip
        self.port = port

    def build_poll(self):
        return encode_mode3()

    def poll(self, server, now):
        """Send one poll to a simulated server; returns the reply packets."""
        reply = server.handle_datagram(self.build_poll(), self.ip, self.port, now)
        return [] if reply is None else list(reply.packets)


def sync_background_clients(server, profiles, since, now):
    """Fold each profile's polls in ``(since, now]`` into the server's table.

    This is the bulk path the scenario uses instead of simulating every poll
    as an event: per client, one aggregate ``record`` carrying the number of
    polls and their span.  The rendered table is byte-identical to the
    per-packet path because the monitor table only stores count/first/last.
    """
    for profile in profiles:
        n = profile.polls_between(since, now)
        if n <= 0:
            continue
        last = profile.last_poll_before(now)
        span = (n - 1) * profile.poll_interval
        server.record_client(
            profile.ip, profile.port, MODE_CLIENT, 4, last, packets=n, span=span
        )
