"""Tests for version-probe parsing and Table 2 statistics."""

import pytest

from repro.analysis import os_family_of, parse_version_captures


def test_os_family_mapping():
    assert os_family_of("Linux/3.2.0") == "linux"
    assert os_family_of("cisco") == "cisco"
    assert os_family_of("FreeBSD/9.1") == "bsd"
    assert os_family_of("JUNOS12.1") == "junos"
    assert os_family_of("UNIX") == "unix"
    assert os_family_of("weird-thing") == "other"
    assert os_family_of(None) == "other"


@pytest.fixture(scope="module")
def version_report(world):
    captures = []
    for sample in world.onp.version_samples:
        captures.extend(sample.captures)
    return parse_version_captures(captures)


def test_records_deduplicated_by_ip(version_report, world):
    ips = {r.ip for r in version_report.records}
    assert len(ips) == len(version_report)


def test_all_ntp_distribution_cisco_heavy(version_report):
    """Table 2 right column: cisco/unix/linux dominate.

    The measured aggregate mixes the cisco-heavy non-amplifier majority
    with the linux-heavy amplifier lineage (inflated by DHCP churn, as in
    the paper's 5.8M unique version IPs), so exact column values are
    checked on the non-amplifier subset in the benchmarks; here we assert
    the aggregate ordering.
    """
    dist = version_report.os_distribution()
    assert dist.get("cisco", 0) > 0.25
    assert dist.get("unix", 0) > 0.12
    top3 = sorted(dist, key=dist.get, reverse=True)[:3]
    assert set(top3) == {"cisco", "unix", "linux"}


def test_amplifier_subset_linux_heavy(version_report, world):
    amplifier_ips = {h.ip for h in world.hosts.monlist_hosts}
    sub = version_report.restrict_to(amplifier_ips)
    assert len(sub) > 10
    dist = sub.os_distribution()
    assert dist.get("linux", 0) > 0.5  # Table 2 middle column: ~80%
    assert dist.get("cisco", 0) < 0.1


def test_mega_subset_includes_junos(version_report, world):
    mega_ips = {h.ip for h in world.hosts.mega_hosts()}
    sub = version_report.restrict_to(mega_ips)
    if len(sub) < 5:
        pytest.skip("too few version-responding megas at this scale")
    dist = sub.os_distribution()
    assert dist.get("junos", 0) + dist.get("linux", 0) > 0.4


def test_stratum16_fraction(version_report):
    frac = version_report.stratum16_fraction()
    assert 0.12 < frac < 0.27  # paper: 19%


def test_compile_year_cdf(version_report):
    cdf = version_report.compile_year_cdf()
    assert 0.05 < cdf[2004] < 0.22  # paper: 13% before 2004
    assert 0.45 < cdf[2012] < 0.72  # paper: 59% before 2012
    assert cdf[2004] < cdf[2010] < cdf[2012] < cdf[2013]


def test_empty_report():
    report = parse_version_captures([])
    assert len(report) == 0
    assert report.os_distribution() == {}
    assert report.stratum16_fraction() == 0.0
    assert report.compile_year_cdf()[2012] == 0.0
