"""Lazy per-amplifier state: materialized ntpd servers with synced tables.

Maintaining 1.4M monlist tables packet-by-packet would be wasteful: the
world only *observes* a table when something queries it (the weekly ONP
probe, mostly).  The :class:`AmplifierStateManager` therefore materializes
an :class:`~repro.ntp.server.NtpServer` per host on first touch and, before
each observation, synchronizes its table from three sources:

* the host's static **background clients** (absolute cumulative state —
  byte-identical to per-packet replay, see ``repro.ntp.client``);
* **scanner hits**: research sweeps touch every host on every sweep;
  malicious sweeps hit a host with probability equal to their coverage;
* **attack pulses** routed through this amplifier since the last sync.

Daemon restarts (table flushes) are honored: state is rebuilt only from
events after the latest flush boundary before the observation time.
"""

import bisect

import numpy as np

from repro.ntp.constants import MODE_CLIENT, NTP_PORT
from repro.ntp.server import NtpServer, ServerConfig

__all__ = ["AmplifierStateManager"]


def _config_for(host):
    """Build the ntpd configuration matching a pool host."""
    attrs = host.attrs
    return ServerConfig(
        stratum=attrs.stratum,
        system=attrs.system,
        processor=attrs.processor,
        daemon_version=attrs.daemon_version,
        compile_year=attrs.compile_year,
        monlist_enabled=host.monlist_amplifier,
        implementations=host.implementations,
        responds_version=host.responds_version,
        loop_factor=host.loop_factor,
        restart_interval=host.restart_interval,
        # Most builds report a modest variable set; a minority are chatty.
        extra_vars=(host.ip % 23) if host.ip % 5 == 0 else (host.ip % 9),
    )


class AmplifierStateManager:
    """Owns the materialized servers and their event feeds."""

    def __init__(self, rng, research_scanners, malicious_coverage_per_day=None):
        self._rng = rng.child("amp-state")
        self._servers = {}
        self._last_sync = {}
        self._flush_base = {}
        self._pulses = {}  # amplifier ip -> list of AttackPulse (sorted on demand)
        self._pulse_ends = {}  # amplifier ip -> [pulse.end] aligned with the sorted list
        self._dirty_pulse_ips = set()  # ips whose pulse list needs (re)sorting
        #: Columnar pulse registry (PulseColumns): the world build's bulk
        #: path.  Coexists with the per-object dict — both are replayed.
        self._pulse_columns = None
        # Per-host malicious-hit streams, derived lazily from the manager
        # RNG by host ip.  Keying draws by host (not by global sync order)
        # is what lets block-sharded sweeps consume the same draws for the
        # same host regardless of which worker syncs it.
        self._mal_rngs = {}
        self._research = research_scanners
        # Each research scanner's sweep schedule is fixed; computing it once
        # here (sorted) turns the per-host window query in `_sync_research`
        # into two bisects instead of an O(sweeps) rebuild per sync.
        self._research_times = [sorted(s.sweep_times()) for s in research_scanners]
        #: {day index: (total malicious coverage, [scanner ips sample])}
        self._malicious_by_day = malicious_coverage_per_day or {}
        # Derived (rebuilt on demand, dropped from pickles): a day-sorted
        # prefix index over _malicious_by_day plus a per-(day0, day1) memo
        # of window sums — sync windows are day-quantized, so thousands of
        # hosts share a handful of distinct windows per sample.
        self._malicious_index = None
        self._malicious_window_cache = {}

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_malicious_index"] = None
        state["_malicious_window_cache"] = {}
        # Per-host streams re-derive from (_rng, host ip) on demand —
        # identical in any process, so never worth pickling.
        state["_mal_rngs"] = {}
        return state

    def block_view(self):
        """A worker-process view sharing the registries but owning its own
        materialization state.

        Shared (read-only in workers): the RNG root, pulse registries,
        research schedules, malicious-day summaries.  Owned: the server
        map, sync clocks, and per-process caches — each build block syncs
        a disjoint slice of hosts, so views never contend and the draws a
        host consumes (keyed per host) match the monolithic build's.
        """
        view = self.__class__.__new__(self.__class__)
        view.__dict__.update(self.__dict__)
        view._servers = {}
        view._last_sync = {}
        view._flush_base = {}
        view._malicious_index = None
        view._malicious_window_cache = {}
        view._mal_rngs = {}
        return view

    # -- wiring -------------------------------------------------------------------

    def register_pulses(self, pulses):
        """Index attack pulses by amplifier.

        Append-only and cheap: pulses are bucketed per amplifier and the
        per-amplifier ordering (by ``end``) is established lazily, once, on
        the first ``sync`` that needs it.  Call as many times as you like —
        the world build registers every attack's pulses in one bulk call —
        but pulses must be registered before any sync whose window should
        contain them: a pulse whose ``end`` precedes the host's last sync
        time is never replayed (same contract as the eager implementation).
        """
        pulse_map = self._pulses
        dirty = self._dirty_pulse_ips
        for pulse in pulses:
            ip = pulse.amplifier_ip
            plist = pulse_map.get(ip)
            if plist is None:
                pulse_map[ip] = [pulse]
            else:
                plist.append(pulse)
            dirty.add(ip)

    def _sorted_pulses(self, ip):
        """The host's pulse list sorted by end time (sorted at most once
        per registration round), plus the aligned end-time index."""
        plist = self._pulses.get(ip)
        if plist is None:
            return None, None
        if ip in self._dirty_pulse_ips:
            plist.sort(key=lambda p: p.end)
            self._pulse_ends[ip] = [p.end for p in plist]
            self._dirty_pulse_ips.discard(ip)
        return plist, self._pulse_ends[ip]

    def register_pulse_columns(self, columns):
        """Register the whole campaign's pulses as one columnar batch.

        ``columns`` is a :class:`~repro.population.columns.PulseColumns`
        (lexsorted by amplifier then end): the per-host window query in
        ``_sync_pulses`` becomes two ``searchsorted`` calls over a
        contiguous slice instead of a per-ip Python list bisect, and the
        ~35M pulse legs of a full-scale campaign never exist as objects.
        """
        self._pulse_columns = columns

    def register_malicious_activity(self, sweeps):
        """Summarize malicious sweeps into per-day (coverage, scanner IPs)."""
        from repro.util.simtime import DAY

        for sweep in sweeps:
            if sweep.kind != "malicious":
                continue
            day = int(sweep.t // DAY)
            coverage, ips = self._malicious_by_day.get(day, (0.0, []))
            coverage += sweep.coverage
            if len(ips) < 64:
                ips = ips + [(sweep.scanner_ip, sweep.mode)]
            self._malicious_by_day[day] = (coverage, ips)
        self._malicious_index = None
        self._malicious_window_cache = {}

    def _malicious_prefix(self):
        """(sorted days, aligned coverages, flat ip pool, pool offsets)."""
        index = self._malicious_index
        if index is None:
            days = sorted(self._malicious_by_day)
            coverages = []
            offsets = [0]
            flat = []
            for day in days:
                coverage, ips = self._malicious_by_day[day]
                coverages.append(coverage)
                flat.extend(ips)
                offsets.append(len(flat))
            index = (days, coverages, flat, offsets)
            self._malicious_index = index
        return index

    # -- server access ----------------------------------------------------------------

    def server_for(self, host):
        """The materialized server for a host (created on first touch)."""
        server = self._servers.get(host.ip)
        if server is None:
            server = NtpServer(ip=host.ip, config=_config_for(host))
            self._servers[host.ip] = server
            self._last_sync[host.ip] = host.birth
        return server

    def is_materialized(self, ip):
        return ip in self._servers

    @property
    def n_materialized(self):
        return len(self._servers)

    # -- synchronization ------------------------------------------------------------

    def sync(self, host, now):
        """Bring the host's table up to date as of ``now``; returns server."""
        server = self.server_for(host)
        last = self._last_sync[host.ip]
        if now < last:
            raise ValueError("sync cannot move backwards")
        if server.maybe_flush(now):
            # Everything before the last flush boundary is gone for good.
            self._flush_base[host.ip] = server.next_flush - server.config.restart_interval
        base = max(self._flush_base.get(host.ip, host.birth), host.birth)
        window_start = max(last, base)
        self._sync_background(host, server, now, base)
        self._sync_research(host, server, now, base)
        self._sync_malicious(host, server, now, window_start)
        self._sync_pulses(host, server, now, window_start)
        self._last_sync[host.ip] = now
        return server

    def _sync_background(self, host, server, now, base):
        if host.clients is None or len(host.clients) == 0:
            return
        since = base if base > host.birth else None
        # Absolute overwrite: recomputes cumulative counts since the last
        # flush, so syncing twice is idempotent for background clients.
        rows = host.clients.state_at(now, since=since)
        if rows:
            server.table.put_client_records(rows, MODE_CLIENT, 4)

    def _sync_research(self, host, server, now, base):
        for scanner, times in zip(self._research, self._research_times):
            # Absolute state: all sweeps since the flush base (idempotent).
            lo = bisect.bisect_right(times, base)
            hi = bisect.bisect_right(times, now)
            if lo >= hi:
                continue
            server.table.put_record(
                scanner.ip,
                50000 + (scanner.ip % 10000),
                scanner.mode,
                2,
                hi - lo,
                times[lo],
                times[hi - 1],
            )

    def _sync_malicious(self, host, server, now, window_start):
        from repro.util.simtime import DAY

        if not self._malicious_by_day:
            return
        day0 = int(window_start // DAY)
        day1 = int(now // DAY)
        window = self._malicious_window_cache.get((day0, day1))
        if window is None:
            days, coverages, flat, offsets = self._malicious_prefix()
            lo = bisect.bisect_left(days, day0)
            hi = bisect.bisect_right(days, day1)
            # Ascending-day sequential sum: the exact float the old
            # day-range loop accumulated (prefix-sum differences would
            # round differently and shift the poisson draw below).
            total_coverage = 0.0
            for i in range(lo, hi):
                total_coverage += coverages[i]
            window = (total_coverage, offsets[lo], offsets[hi])
            self._malicious_window_cache[(day0, day1)] = window
        total_coverage, pool_lo, pool_hi = window
        pool_len = pool_hi - pool_lo
        if pool_len == 0 or total_coverage <= 0:
            return
        flat = self._malicious_prefix()[2]
        # Per-host stream: derived once from (manager rng, host ip), so a
        # host consumes the same draws whether the sweep that syncs it runs
        # monolithically or inside any build-block worker.
        rng = self._mal_rngs.get(host.ip)
        if rng is None:
            rng = self._rng.child(f"host-{host.ip}")
            self._mal_rngs[host.ip] = rng
        # A scanner with coverage c hits this amplifier with probability c;
        # the window's expected hits is the summed coverage.  Capped: the
        # table only needs a plausible scanner background, not a census.
        hits = min(int(rng.poisson(total_coverage)), 6)
        for _ in range(hits):
            ip, mode = flat[pool_lo + int(rng.integers(0, pool_len))]
            t = window_start + float(rng.uniform(0, max(1.0, now - window_start)))
            server.record_client(ip, int(rng.integers(1024, 65535)), mode, 2, min(t, now))

    def _sync_pulses(self, host, server, now, window_start):
        columns = self._pulse_columns
        if columns is not None:
            lo, hi = columns.ip_range(host.ip)
            if lo < hi:
                ends = columns.end
                # Window (window_start, now] over this amplifier's slice
                # (pulses are end-sorted within the slice).
                a = lo + int(np.searchsorted(ends[lo:hi], window_start, side="right"))
                b = lo + int(np.searchsorted(ends[lo:hi], now, side="right"))
                loop_factor = server.config.loop_factor
                record = server.record_client
                for j in range(a, b):
                    # record_attack_pulse, columnarized: link-capped loop
                    # amplification folded in at the pulse's end instant.
                    duration = float(columns.duration[j])
                    link_cap = int(30_000 * max(1.0, duration))
                    packets = min(int(columns.query_count[j]) * loop_factor, link_cap)
                    record(
                        int(columns.victim_ip[j]),
                        int(columns.victim_port[j]),
                        int(columns.mode[j]),
                        2,
                        float(ends[j]),
                        packets=packets,
                        span=duration,
                    )
        plist, ends = self._sorted_pulses(host.ip)
        if not plist:
            return
        lo = bisect.bisect_right(ends, window_start)
        hi = bisect.bisect_right(ends, now)
        for pulse in plist[lo:hi]:
            if pulse.end <= window_start:
                continue
            server.record_attack_pulse(pulse)
        # Pulses still in flight at `now` are deliberately not recorded:
        # applying them partially here and fully at the next sync would
        # double-count.  Weekly probes land inside an attack rarely (median
        # durations are seconds to minutes), so the undercount is small and
        # conservative — the paper argues its own victim numbers are lower
        # bounds for the same kind of reason.
