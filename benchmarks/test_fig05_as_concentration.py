"""Figure 5: CDF of victim packets by AS.

Paper: just 100 amplifier ASes (of 16,687) source 60% of victim packets;
victims are even more concentrated — the top 100 of 11,558 victim ASes
receive three quarters of all attack packets; the OVH-like hoster is the
single top victim AS (§4.4), with the CloudFlare-like CDN in the top 20.
"""

from repro.analysis import as_concentration


def test_fig05_as_concentration(benchmark, victim_report, world):
    report = benchmark(as_concentration, victim_report, world.table)

    n_victim_ases = len(report.victim_as_packets)
    n_amp_ases = len(report.amplifier_as_packets)
    # Scale the paper's top-100-of-11,558 to our AS universe.
    k_victim = max(3, round(n_victim_ases * 100 / 11_558))
    victim_top = report.victim_ecdf.fraction_within_top(k_victim)
    # Strong concentration: a sliver of ASes absorbs most packets.
    assert victim_top > 0.25
    assert report.victim_ecdf.fraction_within_top(n_victim_ases // 10) > 0.5

    ovh = world.registry.special["HOSTING-FR-1"]
    rank = report.victim_as_rank(ovh.asn)
    assert rank is not None and rank <= 5  # paper: rank 1

    print(
        f"\nFig5: victim ASes={n_victim_ases} top-{k_victim} hold {victim_top:.2f}; "
        f"amp ASes={n_amp_ases}; OVH-like AS rank={rank}"
    )
    print("  top victim ASes:", [(a, int(p)) for a, p in report.top_victim_ases(5)])
