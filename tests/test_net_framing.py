"""Tests for on-wire byte accounting (§3.2's BAF arithmetic)."""

import pytest
from hypothesis import given

from repro.net import MIN_ONWIRE_FRAME, on_wire_bytes, udp_datagram_bytes
from repro.net.framing import frame_bytes, on_wire_total
from tests.strategies import udp_payload_sizes


def test_minimum_on_wire_is_84():
    """The paper's monlist query costs 84 bytes on the wire."""
    assert MIN_ONWIRE_FRAME == 84
    assert on_wire_bytes(0) == 84
    assert on_wire_bytes(8) == 84  # the 8-byte mode-7 request still fits


def test_on_wire_grows_beyond_minimum():
    # 64-byte frame holds 14 + 28 + payload + 4 <= 64 -> payload <= 18
    assert on_wire_bytes(18) == 84
    assert on_wire_bytes(19) == 85


def test_known_monlist_response_size():
    # One mode-7 packet with 4 v2 entries: 8 + 4*72 = 296-byte payload.
    assert on_wire_bytes(296) == 296 + 28 + 14 + 4 + 20


def test_udp_datagram_bytes():
    assert udp_datagram_bytes(0) == 28
    assert udp_datagram_bytes(100) == 128
    with pytest.raises(ValueError):
        udp_datagram_bytes(-1)


def test_frame_padding():
    assert frame_bytes(0) == 64


def test_on_wire_total():
    assert on_wire_total([0, 0]) == 168
    assert on_wire_total([]) == 0


@given(udp_payload_sizes)
def test_on_wire_monotone_and_bounded(payload):
    cost = on_wire_bytes(payload)
    assert cost >= 84
    assert cost >= payload
    assert on_wire_bytes(payload + 1) >= cost
