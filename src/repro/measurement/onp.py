"""The OpenNTPProject-style active prober (§3's ONP dataset).

Weekly, from one measurement-network source IP, the prober sends every IPv4
address a single NTP packet and captures all response packets:

* **monlist scans** (mode 7, implementation ``IMPL_XNTPD`` only — the
  paper's scans used one of the two implementation codes, its main
  acknowledged undercount) — fifteen samples, 2014-01-10 .. 2014-04-18;
* **version scans** (mode 6 READVAR) — nine samples from 2014-02-21.

Captures store raw packet bytes; the analysis layer re-parses them with the
ntpdc protocol logic, exactly as the paper did.
"""

from dataclasses import dataclass, field

from repro.attack.scanner import ONP_PROBER_IP
from repro.ntp.constants import IMPL_XNTPD, MODE_CONTROL
from repro.util.simtime import WEEK, date_to_sim, format_sim, week_samples

__all__ = [
    "MONLIST_SAMPLE_TIMES",
    "VERSION_SAMPLE_TIMES",
    "ProbeCapture",
    "OnpSample",
    "OnpDataset",
    "OnpProber",
]

MONLIST_SAMPLE_TIMES = week_samples(date_to_sim(2014, 1, 10), 15)
VERSION_SAMPLE_TIMES = week_samples(date_to_sim(2014, 2, 21), 9)


@dataclass(frozen=True)
class ProbeCapture:
    """All response packets one target sent to one probe.

    ``packets`` is one rendition; mega amplifiers repeat it ``n_repeats``
    times (§3.4), so aggregate sizes are exact without materializing
    gigabytes.
    """

    target_ip: int
    t: float
    packets: tuple
    n_repeats: int = 1

    @property
    def total_packets(self):
        return len(self.packets) * self.n_repeats

    @property
    def total_payload_bytes(self):
        return sum(len(p) for p in self.packets) * self.n_repeats


@dataclass
class OnpSample:
    """One Internet-wide scan: a date and every capture it produced."""

    t: float
    mode: int
    captures: list = field(default_factory=list)
    #: True when the whole weekly sweep is missing (apparatus outage);
    #: the sample is kept in the dataset so consumers can mark the gap.
    outage: bool = False
    #: Fraction of the target list the sweep actually covered (< 1.0 when
    #: the apparatus aborted the sweep partway through the address space).
    coverage: float = 1.0

    @property
    def date(self):
        return format_sim(self.t)

    def __len__(self):
        return len(self.captures)

    def responder_ips(self):
        return {c.target_ip for c in self.captures}


@dataclass
class OnpDataset:
    """The full ONP corpus: 15 monlist samples + 9 version samples."""

    monlist_samples: list = field(default_factory=list)
    version_samples: list = field(default_factory=list)

    def monlist_unique_ips(self):
        out = set()
        for sample in self.monlist_samples:
            out |= sample.responder_ips()
        return out


class OnpProber:
    """Runs the weekly sweeps against the simulated world."""

    def __init__(self, state_manager, prober_ip=ONP_PROBER_IP, loss_rate=0.05, faults=None):
        if not 0 <= loss_rate < 1:
            raise ValueError("loss_rate must be in [0, 1)")
        self._state = state_manager
        self._ip = prober_ip
        self._loss = loss_rate
        #: Optional :class:`~repro.faults.FaultInjector`.  All fault draws
        #: come from the injector's own streams, never from the sweep RNG,
        #: so a clean profile leaves the sweeps byte-identical.
        self._faults = faults

    def run_monlist_sample(self, host_pool, t, rng):
        """One IPv4-wide monlist sweep at time ``t``.

        Every *existing* host is probed (the sweep covers all of IPv4);
        only hosts that are monlist-active for the probed implementation
        reply.  A small loss rate models rate-limiting and filtering of
        the single scanning source.
        """
        sample = OnpSample(t=t, mode=7)
        faults = self._faults
        targets = host_pool.monlist_hosts
        if faults is not None:
            if faults.sample_outage(7, t):
                sample.outage = True
                return sample
            cutoff = faults.sweep_cutoff(7, t)
            if cutoff is not None:
                # Aborted sweep: only the first fraction of the target list
                # was ever probed.  Unprobed hosts consume no draws, exactly
                # as never-replying hosts already don't.
                sample.coverage = cutoff
                targets = targets[: int(len(targets) * cutoff)]
        for host in targets:
            # Remediated hosts never answer again, and their table contents
            # are unobservable, so they can be skipped outright.
            if not host.monlist_active(t):
                continue
            server = self._state.sync(host, t)
            reply = server.respond_monlist(self._ip, 50557 + (int(t) % 1000), t, IMPL_XNTPD)
            if reply is None:
                continue
            # RNG-order contract (pinned; both run_* samplers obey it): the
            # loss draw happens AFTER reply generation and ONLY for hosts
            # that produced a reply.  The probe is always recorded by the
            # server (loss models the response path), and hosts that cannot
            # reply must not consume a draw — reordering either part shifts
            # every subsequent draw and breaks world determinism.
            if rng.random() < self._loss:
                continue
            packets = reply.packets
            if faults is not None:
                # Degrade only what the apparatus recorded (post-loss), from
                # the injector's own stream — the sweep RNG is untouched.
                packets = faults.mangle_mode7(packets)
            sample.captures.append(
                ProbeCapture(
                    target_ip=host.ip,
                    t=t,
                    packets=packets,
                    n_repeats=reply.n_repeats,
                )
            )
        return sample

    def run_version_sample(self, host_pool, t, rng):
        """One IPv4-wide mode-6 version sweep at time ``t``."""
        sample = OnpSample(t=t, mode=6)
        faults = self._faults
        targets = host_pool.version_hosts
        if faults is not None:
            if faults.sample_outage(6, t):
                sample.outage = True
                return sample
            cutoff = faults.sweep_cutoff(6, t)
            if cutoff is not None:
                sample.coverage = cutoff
                targets = targets[: int(len(targets) * cutoff)]
        for host in targets:
            if not host.version_active(t):
                continue
            # Version replies don't depend on monitor-table state, so no
            # table sync is needed.  The reply is rendered without logging
            # the probe: version-scan loss models the probe being filtered
            # before it reaches the target, so a lost probe leaves no
            # monitor-table trace (unlike monlist loss, which drops only
            # the response of an already-recorded probe).
            server = self._state.server_for(host)
            reply = server.respond_version(self._ip, 50557, t, record=False)
            if reply is None:
                continue
            # Same RNG-order contract as run_monlist_sample (pinned): loss
            # is drawn AFTER reply generation, one draw per replying host.
            # A version-active host always replies, so this consumes draws
            # for exactly the hosts the pre-reply ordering did — do not
            # move the draw, it would shift every subsequent one.
            if rng.random() < self._loss:
                continue
            server.record_client(self._ip, 50557, MODE_CONTROL, 2, t, packets=server.config.loop_factor)
            sample.captures.append(
                ProbeCapture(
                    target_ip=host.ip,
                    t=t,
                    packets=reply.packets,
                    n_repeats=reply.n_repeats,
                )
            )
        return sample

    def run_all(self, host_pool, rng, monlist_times=None, version_times=None):
        """The full campaign, interleaved chronologically (table syncs must
        advance monotonically); returns an :class:`OnpDataset`."""
        dataset = OnpDataset()
        schedule = [(t, 7) for t in (monlist_times or MONLIST_SAMPLE_TIMES)]
        schedule += [(t, 6) for t in (version_times or VERSION_SAMPLE_TIMES)]
        schedule.sort()
        for t, mode in schedule:
            if mode == 7:
                dataset.monlist_samples.append(
                    self.run_monlist_sample(host_pool, t, rng.child(f"monlist-{int(t)}"))
                )
            else:
                dataset.version_samples.append(
                    self.run_version_sample(host_pool, t, rng.child(f"version-{int(t)}"))
                )
        return dataset
