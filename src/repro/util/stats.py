"""Statistics helpers used across the analysis modules.

The paper reports boxplot five-number summaries (Fig. 4b/4c), percentiles
(Fig. 6), empirical CDFs over ranked aggregates (Fig. 5), and simple ratio
series.  These helpers centralize that arithmetic.
"""

from dataclasses import dataclass

import numpy as np

__all__ = [
    "percentile",
    "BoxplotSummary",
    "boxplot_summary",
    "Ecdf",
    "rank_series",
    "safe_ratio",
    "log_center_bins",
]


def percentile(values, q):
    """The ``q``-th percentile (0..100) of ``values``; NaN when empty."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return float("nan")
    return float(np.percentile(arr, q))


@dataclass(frozen=True)
class BoxplotSummary:
    """Five-number summary as drawn in the paper's BAF boxplots."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    count: int

    def as_tuple(self):
        return (self.minimum, self.q1, self.median, self.q3, self.maximum)


def boxplot_summary(values):
    """Compute a :class:`BoxplotSummary`; raises on empty input."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return BoxplotSummary(
        minimum=float(arr.min()),
        q1=float(np.percentile(arr, 25)),
        median=float(np.percentile(arr, 50)),
        q3=float(np.percentile(arr, 75)),
        maximum=float(arr.max()),
        count=int(arr.size),
    )


class Ecdf:
    """Empirical CDF over per-item weights sorted descending by weight.

    This matches Figure 5's construction: sort ASes by packets contributed
    (descending), then plot cumulative fraction of packets against rank.
    """

    def __init__(self, weights):
        arr = np.asarray(sorted(weights, reverse=True), dtype=float)
        if arr.size == 0:
            raise ValueError("cannot build an ECDF over no items")
        if (arr < 0).any():
            raise ValueError("weights must be non-negative")
        total = arr.sum()
        if total <= 0:
            raise ValueError("weights must not all be zero")
        self._weights = arr
        self._cum_frac = np.cumsum(arr) / total

    @property
    def n_items(self):
        return int(self._weights.size)

    def fraction_within_top(self, k):
        """Fraction of total weight held by the ``k`` heaviest items."""
        if k <= 0:
            return 0.0
        k = min(int(k), self._weights.size)
        return float(self._cum_frac[k - 1])

    def series(self):
        """(rank, cumulative fraction) pairs, rank starting at 1."""
        return [(i + 1, float(f)) for i, f in enumerate(self._cum_frac)]


def rank_series(values):
    """(rank, value) pairs sorted descending by value, rank starting at 1.

    Used for Figure 4a's "amplifier rank vs bytes returned" plot.
    """
    ordered = sorted((float(v) for v in values), reverse=True)
    return [(i + 1, v) for i, v in enumerate(ordered)]


def safe_ratio(numerator, denominator):
    """``numerator / denominator`` with 0 for a zero denominator."""
    if denominator == 0:
        return 0.0
    return numerator / denominator


def log_center_bins(low, high, per_decade=10):
    """Geometrically spaced bin centers between ``low`` and ``high``."""
    if low <= 0 or high <= low:
        raise ValueError("need 0 < low < high")
    n = max(2, int(np.ceil(np.log10(high / low) * per_decade)) + 1)
    return list(np.geomspace(low, high, n))
