"""The OpenNTPProject-style active prober (§3's ONP dataset).

Weekly, from one measurement-network source IP, the prober sends every IPv4
address a single NTP packet and captures all response packets:

* **monlist scans** (mode 7, implementation ``IMPL_XNTPD`` only — the
  paper's scans used one of the two implementation codes, its main
  acknowledged undercount) — fifteen samples, 2014-01-10 .. 2014-04-18;
* **version scans** (mode 6 READVAR) — nine samples from 2014-02-21.

Captures store raw packet bytes; the analysis layer re-parses them with the
ntpdc protocol logic, exactly as the paper did.
"""

from dataclasses import dataclass, field

from repro.attack.scanner import ONP_PROBER_IP
from repro.ntp.constants import IMPL_XNTPD, MODE_CONTROL, MODE_PRIVATE
from repro.util.simtime import WEEK, date_to_sim, format_sim, week_samples

__all__ = [
    "MONLIST_SAMPLE_TIMES",
    "VERSION_SAMPLE_TIMES",
    "ProbeCapture",
    "OnpSample",
    "OnpDataset",
    "OnpProber",
]

MONLIST_SAMPLE_TIMES = week_samples(date_to_sim(2014, 1, 10), 15)
VERSION_SAMPLE_TIMES = week_samples(date_to_sim(2014, 2, 21), 9)


@dataclass(frozen=True)
class ProbeCapture:
    """All response packets one target sent to one probe.

    ``packets`` is one rendition; mega amplifiers repeat it ``n_repeats``
    times (§3.4), so aggregate sizes are exact without materializing
    gigabytes.
    """

    target_ip: int
    t: float
    packets: tuple
    n_repeats: int = 1

    @property
    def total_packets(self):
        return len(self.packets) * self.n_repeats

    @property
    def total_payload_bytes(self):
        return sum(len(p) for p in self.packets) * self.n_repeats


@dataclass
class OnpSample:
    """One Internet-wide scan: a date and every capture it produced."""

    t: float
    mode: int
    captures: list = field(default_factory=list)
    #: True when the whole weekly sweep is missing (apparatus outage);
    #: the sample is kept in the dataset so consumers can mark the gap.
    outage: bool = False
    #: Fraction of the target list the sweep actually covered (< 1.0 when
    #: the apparatus aborted the sweep partway through the address space).
    coverage: float = 1.0

    #: Length-guarded memo for :meth:`responder_ips` — samples are
    #: append-only after the sweep, so a stale entry is detected by size.
    _responder_cache: tuple = field(default=None, repr=False, compare=False)

    @property
    def date(self):
        return format_sim(self.t)

    def __len__(self):
        return len(self.captures)

    def responder_ips(self):
        """The set of target IPs that produced a capture (cached).

        Analysis loops call this once per (sample, artifact) pair; the set
        is rebuilt only when the capture list has grown since the last
        call, which never happens after the sweep completes.
        """
        cache = self._responder_cache
        n = len(self.captures)
        if cache is None or cache[0] != n:
            cache = (n, {c.target_ip for c in self.captures})
            self._responder_cache = cache
        return cache[1]


@dataclass
class OnpDataset:
    """The full ONP corpus: 15 monlist samples + 9 version samples."""

    monlist_samples: list = field(default_factory=list)
    version_samples: list = field(default_factory=list)
    _unique_cache: tuple = field(default=None, repr=False, compare=False)

    def monlist_unique_ips(self):
        """Union of responder IPs over all monlist samples (cached; the
        guard is the total capture count, append-only after the sweep)."""
        total = sum(len(s.captures) for s in self.monlist_samples)
        cache = self._unique_cache
        if cache is None or cache[0] != total:
            out = set()
            for sample in self.monlist_samples:
                out |= sample.responder_ips()
            cache = (total, out)
            self._unique_cache = cache
        return cache[1]


class OnpProber:
    """Runs the weekly sweeps against the simulated world."""

    def __init__(self, state_manager, prober_ip=ONP_PROBER_IP, loss_rate=0.05, faults=None):
        if not 0 <= loss_rate < 1:
            raise ValueError("loss_rate must be in [0, 1)")
        self._state = state_manager
        self._ip = prober_ip
        self._loss = loss_rate
        #: Optional :class:`~repro.faults.FaultInjector`.  All fault draws
        #: come from the injector's own streams, never from the sweep RNG,
        #: so a clean profile leaves the sweeps byte-identical.
        self._faults = faults
        #: ip -> (server, ProbeReply) memo for version sweeps.  A mode-6
        #: reply is a pure function of the server's frozen config and ip
        #: (servers are keyed by ip), so later sweeps skip the render.
        self._version_replies = {}

    def _sweep_targets(self, host_pool, mode, t, sample, faults):
        """The active targets of one sweep, honoring outage/cutoff faults.

        Returns ``None`` on a full-sample outage.  Partial sweeps probe
        only a prefix of the target list; the prefix-limited liveness
        query yields exactly the hosts ``targets[:k]`` + ``*_active(t)``
        filtering would, in the same order (pinned by the liveness-index
        equivalence test).
        """
        limit = None
        if faults is not None:
            if faults.sample_outage(mode, t):
                sample.outage = True
                return None
            cutoff = faults.sweep_cutoff(mode, t)
            if cutoff is not None:
                # Aborted sweep: only the first fraction of the target list
                # was ever probed.  Unprobed hosts consume no draws, exactly
                # as never-replying hosts already don't.
                sample.coverage = cutoff
                n_targets = len(host_pool.monlist_hosts if mode == 7 else host_pool.version_hosts)
                limit = int(n_targets * cutoff)
        if mode == 7:
            return host_pool.monlist_alive(t, limit=limit)
        return host_pool.version_alive(t, limit=limit)

    def run_monlist_sample(self, host_pool, t, rng):
        """One IPv4-wide monlist sweep at time ``t``.

        Every *existing* host is probed (the sweep covers all of IPv4);
        only hosts that are monlist-active for the probed implementation
        reply.  A small loss rate models rate-limiting and filtering of
        the single scanning source.
        """
        sample = OnpSample(t=t, mode=7)
        faults = self._faults
        active = self._sweep_targets(host_pool, 7, t, sample, faults)
        if active is None:
            return sample
        src_ip = self._ip
        src_port = 50557 + (int(t) % 1000)  # hoisted: constant per sweep
        sync = self._state.sync
        # Pass 1 — probe every active host in target-list order: sync its
        # table, record the probe (ntpd monitors all traffic regardless of
        # response loss), and note which hosts would reply.  The reply
        # conditions mirror NtpServer.monlist_reply exactly.
        repliers = []
        for host in active:
            server = sync(host, t)
            config = server.config
            # Direct table.record: sync(host, t) already consumed every
            # flush boundary <= t, so record_client's maybe_flush(t) would
            # be a guaranteed no-op here.
            server.table.record(src_ip, src_port, MODE_PRIVATE, 2, t, packets=config.loop_factor)
            if config.monlist_enabled and IMPL_XNTPD in config.implementations:
                repliers.append((host, server))
        if not repliers:
            return sample
        # RNG-order contract (pinned; both run_* samplers obey it): the
        # loss draw happens AFTER reply generation and ONLY for hosts that
        # produced a reply.  One block draw consumes the PCG64 stream
        # exactly like len(repliers) scalar random() calls (pinned by the
        # block-vs-scalar RNG test), so each replier still sees the draw
        # the per-host loop would have given it — reordering either part
        # shifts every subsequent draw and breaks world determinism.
        draws = rng.random(len(repliers))
        loss = self._loss
        mangle = faults.mangle_mode7 if faults is not None else None
        captures = sample.captures
        # Pass 2 — render replies only for survivors.  Rendering is a pure
        # function of the table at ``t`` (no table mutates between the
        # passes), so skipping lost replies changes no surviving bytes.
        for (host, server), u in zip(repliers, draws):
            if u < loss:
                continue
            reply = server.monlist_reply(t, IMPL_XNTPD)
            packets = reply.packets
            if mangle is not None:
                # Degrade only what the apparatus recorded (post-loss), from
                # the injector's own stream — the sweep RNG is untouched.
                packets = mangle(packets)
            captures.append(
                ProbeCapture(
                    target_ip=host.ip,
                    t=t,
                    packets=packets,
                    n_repeats=reply.n_repeats,
                )
            )
        return sample

    def run_version_sample(self, host_pool, t, rng):
        """One IPv4-wide mode-6 version sweep at time ``t``."""
        sample = OnpSample(t=t, mode=6)
        faults = self._faults
        active = self._sweep_targets(host_pool, 6, t, sample, faults)
        if active is None:
            return sample
        src_ip = self._ip
        server_for = self._state.server_for
        # Pass 1 — render every active host's reply.  Version replies don't
        # depend on monitor-table state (no sync needed) and are rendered
        # without logging the probe: version-scan loss models the probe
        # being filtered before it reaches the target, so a lost probe
        # leaves no monitor-table trace (unlike monlist loss, which drops
        # only the response of an already-recorded probe).
        reply_memo = self._version_replies
        repliers = []
        for host in active:
            entry = reply_memo.get(host.ip)
            if entry is None:
                server = server_for(host)
                entry = (server, server.respond_version(src_ip, 50557, t, record=False))
                reply_memo[host.ip] = entry
            server, reply = entry
            if reply is not None:
                repliers.append((host, server, reply))
        if not repliers:
            return sample
        # Same RNG-order contract as run_monlist_sample (pinned): loss is
        # drawn AFTER reply generation, one draw per replying host, and the
        # block draw equals len(repliers) scalar draws on the same stream.
        # The surviving hosts' probes are then recorded in host order —
        # each record touches only that host's own table, so batching the
        # records after the draws mutates exactly the tables the
        # interleaved ordering did, identically.
        draws = rng.random(len(repliers))
        loss = self._loss
        captures = sample.captures
        for (host, server, reply), u in zip(repliers, draws):
            if u < loss:
                continue
            if server.config.monlist_enabled:
                # The probe's monitor-table trace is observable only where
                # the table can ever be rendered — monlist amplifiers.  A
                # version-only server's table is write-only dead state, so
                # recording there is skipped (no RNG involved; the world's
                # observable bytes are identical).
                server.record_client(src_ip, 50557, MODE_CONTROL, 2, t, packets=server.config.loop_factor)
            captures.append(
                ProbeCapture(
                    target_ip=host.ip,
                    t=t,
                    packets=reply.packets,
                    n_repeats=reply.n_repeats,
                )
            )
        return sample

    def run_all(self, host_pool, rng, monlist_times=None, version_times=None):
        """The full campaign, interleaved chronologically (table syncs must
        advance monotonically); returns an :class:`OnpDataset`."""
        dataset = OnpDataset()
        schedule = [(t, 7) for t in (monlist_times or MONLIST_SAMPLE_TIMES)]
        schedule += [(t, 6) for t in (version_times or VERSION_SAMPLE_TIMES)]
        schedule.sort()
        for t, mode in schedule:
            if mode == 7:
                dataset.monlist_samples.append(
                    self.run_monlist_sample(host_pool, t, rng.child(f"monlist-{int(t)}"))
                )
            else:
                dataset.version_samples.append(
                    self.run_version_sample(host_pool, t, rng.child(f"version-{int(t)}"))
                )
        return dataset
