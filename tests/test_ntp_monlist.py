"""Tests for the monlist MRU table, including property-based invariants."""

import pytest
from hypothesis import given, settings

from repro.ntp import MONLIST_CAPACITY, MonlistTable, decode_mode7
from repro.ntp.constants import IMPL_XNTPD, IMPL_XNTPD_OLD, REQ_MON_GETLIST, REQ_MON_GETLIST_1
from tests.strategies import monlist_events


def test_record_and_len():
    table = MonlistTable()
    table.record(1, 123, 3, 4, now=100.0)
    table.record(2, 123, 3, 4, now=200.0)
    assert len(table) == 2
    assert 1 in table and 3 not in table


def test_record_merges_same_addr():
    table = MonlistTable()
    table.record(1, 123, 3, 4, now=100.0)
    table.record(1, 123, 3, 4, now=500.0, packets=3)
    rec = table.get(1)
    assert rec.count == 4
    assert rec.last_seen == 500.0
    assert rec.first_seen == 100.0


def test_record_span_sets_first_seen():
    table = MonlistTable()
    table.record(1, 80, 7, 2, now=1000.0, packets=100, span=40.0)
    rec = table.get(1)
    assert rec.first_seen == 960.0


def test_out_of_order_records_keep_latest():
    table = MonlistTable()
    table.record(1, 123, 3, 4, now=500.0)
    table.record(1, 123, 3, 4, now=100.0)  # late-arriving older observation
    rec = table.get(1)
    assert rec.last_seen == 500.0
    assert rec.first_seen == 100.0
    assert rec.count == 2


def test_entries_mru_order_and_intervals():
    table = MonlistTable()
    table.record(10, 123, 3, 4, now=100.0)
    table.record(20, 123, 3, 4, now=300.0)
    table.record(30, 123, 3, 4, now=200.0)
    entries = table.entries_mru(now=400.0)
    assert [e.addr for e in entries] == [20, 30, 10]
    assert entries[0].last_int == 100
    assert entries[-1].last_int == 300


def test_render_caps_at_capacity():
    table = MonlistTable(capacity=5)
    for i in range(20):
        table.record(i, 123, 3, 4, now=float(i))
    entries = table.entries_mru(now=100.0)
    assert len(entries) == 5
    assert [e.addr for e in entries] == [19, 18, 17, 16, 15]


def test_lazy_prune_bounds_memory():
    table = MonlistTable(capacity=10)
    for i in range(100):
        table.record(i, 123, 3, 4, now=float(i))
    assert table.n_tracked <= 20


def test_clear():
    table = MonlistTable()
    table.record(1, 123, 3, 4, now=1.0)
    table.clear()
    assert len(table) == 0


def test_invalid_inputs():
    table = MonlistTable()
    with pytest.raises(ValueError):
        table.record(1, 123, 3, 4, now=1.0, packets=0)
    with pytest.raises(ValueError):
        table.record(1, 123, 3, 4, now=1.0, span=-1.0)
    with pytest.raises(ValueError):
        MonlistTable(capacity=0)


def test_render_empty_table_single_packet():
    table = MonlistTable()
    packets = table.render_response_packets(0.0, 2, IMPL_XNTPD)
    assert len(packets) == 1
    pkt = decode_mode7(packets[0])
    assert pkt.n_items == 0
    assert not pkt.more


@pytest.mark.parametrize(
    "entry_version,impl,req,per_packet",
    [(2, IMPL_XNTPD, REQ_MON_GETLIST_1, 6), (1, IMPL_XNTPD_OLD, REQ_MON_GETLIST, 15)],
)
def test_render_packetization(entry_version, impl, req, per_packet):
    table = MonlistTable()
    for i in range(per_packet + 1):
        table.record(i, 123, 3, 4, now=float(i))
    packets = table.render_response_packets(100.0, entry_version, impl)
    assert len(packets) == 2
    first, last = decode_mode7(packets[0]), decode_mode7(packets[1])
    assert first.more and not last.more
    assert first.n_items == per_packet
    assert last.n_items == 1
    assert first.request_code == req
    assert first.sequence == 0 and last.sequence == 1


def test_render_full_table_v2_packet_count():
    table = MonlistTable()
    for i in range(1000):
        table.record(i, 123, 3, 4, now=float(i))
    packets = table.render_response_packets(2000.0, 2, IMPL_XNTPD)
    assert len(packets) == 100  # 600 entries / 6 per packet
    total_items = sum(decode_mode7(p).n_items for p in packets)
    assert total_items == MONLIST_CAPACITY


def test_render_rejects_unknown_version():
    with pytest.raises(ValueError):
        MonlistTable().render_response_packets(0.0, 3, IMPL_XNTPD)


def test_sequence_wraps_at_128():
    table = MonlistTable(capacity=600)
    # Enough records to need >128 v2 packets would exceed capacity, so wrap
    # is only reachable via sequence_start.
    table.record(1, 123, 3, 4, now=0.0)
    packets = table.render_response_packets(1.0, 2, IMPL_XNTPD, sequence_start=127)
    assert decode_mode7(packets[0]).sequence == 127


@settings(max_examples=50)
@given(monlist_events)
def test_mru_invariants(events):
    """Properties: render order is by recency, counts sum to events, and the
    render never exceeds capacity."""
    table = MonlistTable(capacity=25)
    latest = {}
    counts = {}
    for addr, t in events:
        table.record(addr, 123, 3, 4, now=t)
        latest[addr] = max(latest.get(addr, t), t)
        counts[addr] = counts.get(addr, 0) + 1
    now = 2e6
    entries = table.entries_mru(now)
    assert len(entries) <= 25
    # MRU order: non-increasing recency.
    last_ints = [e.last_int for e in entries]
    assert last_ints == sorted(last_ints)
    # Rendered counts match the number of events per addr (no pruning can
    # have dropped an entry that is still within the render set unless more
    # than capacity distinct addrs were recorded).
    if len(counts) <= 25:
        assert {e.addr: e.count for e in entries} == counts
