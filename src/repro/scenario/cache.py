"""Content-addressed persistent world cache.

``PaperWorld.build`` is deterministic in ``(seed, WorldParams)``, so a
built world can be reused across processes — provided the cached bytes
really correspond to the world being asked for.  This module owns that
correspondence:

* the **cache key** is a SHA-256 over the fully-resolved
  :class:`~repro.scenario.world.WorldParams` fields *and* the package
  version, so a parameter change, a different seed, or upgrading the
  simulator all miss the cache instead of silently serving a stale world;
* every cache file embeds the same ``(version, params)`` envelope it was
  keyed by, and :func:`load_world` re-validates it on the way in — a file
  renamed, copied between checkouts, or written by an older ``repro``
  is rejected (``CacheMiss``) rather than trusted.

Two consumers:

* the CLI ``--cache PATH`` flag (one explicit file, validated on load);
* the ``REPRO_WORLD_CACHE`` environment variable (a cache *directory*,
  keyed automatically), honored by ``benchmarks/conftest.py`` and
  :func:`build_world_cached`.
"""

import dataclasses
import hashlib
import os
import pickle
import sys

__all__ = [
    "CACHE_ENV_VAR",
    "CacheMiss",
    "cache_key",
    "cached_world_path",
    "save_world",
    "load_world",
    "build_world_cached",
]

#: Environment variable naming the cache directory for keyed world reuse.
CACHE_ENV_VAR = "REPRO_WORLD_CACHE"

#: Bumped independently of the package version when the cache envelope
#: format itself changes.
_ENVELOPE_FORMAT = 1


class CacheMiss(Exception):
    """The cache has no usable entry (absent, stale, or corrupt)."""


def _package_version():
    from repro import __version__

    return __version__


def cache_key(params):
    """Deterministic hex key for a world: resolved params + package version.

    Uses the *resolved* AS count so ``n_ases=None`` and an explicit equal
    count share an entry, and includes every other ``WorldParams`` field by
    name so adding a field changes the key rather than aliasing old entries.
    """
    fields = dataclasses.asdict(params)
    fields["n_ases"] = params.resolved_n_ases()
    material = repr(
        (
            "repro-world",
            _ENVELOPE_FORMAT,
            _package_version(),
            sorted(fields.items()),
        )
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def cached_world_path(params, cache_dir=None):
    """The keyed file path for ``params`` (under ``cache_dir`` or the
    ``REPRO_WORLD_CACHE`` directory); None when no directory is configured."""
    directory = cache_dir or os.environ.get(CACHE_ENV_VAR)
    if not directory:
        return None
    return os.path.join(directory, f"world-{cache_key(params)[:24]}.pkl")


def _envelope(world):
    return {
        "format": _ENVELOPE_FORMAT,
        "version": _package_version(),
        "params": world.params,
        "world": world,
    }


def save_world(world, path):
    """Pickle ``world`` to ``path`` with its validation envelope.

    Writes via a temp file + rename so a crashed writer never leaves a
    truncated cache entry behind.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as handle:
        pickle.dump(_envelope(world), handle, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)
    return path


def load_world(path, params):
    """Load a cached world from ``path``, validating it matches ``params``.

    Raises :class:`CacheMiss` when the file is absent, unreadable, written
    by a different package version, or built from different params — the
    caller should rebuild (and usually re-save).
    """
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except FileNotFoundError:
        raise CacheMiss(f"no cache file at {path}") from None
    except Exception as exc:  # noqa: BLE001 -- unpickling garbage raises
        # whatever opcode happens to decode first (ValueError, KeyError,
        # UnpicklingError, ...); any failure to load is a miss, never a crash.
        raise CacheMiss(f"unreadable cache file {path}: {exc}") from None
    if not isinstance(payload, dict) or "world" not in payload:
        # Legacy bare-world pickles (pre-envelope) carry no provenance.
        raise CacheMiss(f"{path} has no validation envelope (legacy cache?)")
    if payload.get("format") != _ENVELOPE_FORMAT:
        raise CacheMiss(f"{path}: cache envelope format {payload.get('format')!r}")
    if payload.get("version") != _package_version():
        raise CacheMiss(
            f"{path}: built by repro {payload.get('version')!r}, "
            f"this is {_package_version()!r}"
        )
    try:
        params_match = payload.get("params") == params
    except Exception:  # noqa: BLE001 -- a params object unpickled from an
        # older schema can fail dataclass comparison (missing fields); any
        # comparison failure is a stale cache, never a crash.
        params_match = False
    if not params_match:
        raise CacheMiss(
            f"{path}: built for {payload.get('params')!r}, requested {params!r}"
        )
    return payload["world"]


def build_world_cached(params, cache_dir=None, quiet=True, note=None, jobs=1):
    """Build a world through the keyed directory cache (if configured).

    With no cache directory (argument or ``REPRO_WORLD_CACHE``), this is
    exactly ``PaperWorld.build``.  Otherwise a valid entry is loaded, and
    a miss triggers a build followed by a best-effort save.  ``note`` is
    an optional callable receiving one human-readable status line
    (defaults to stderr when ``quiet`` is false).

    ``jobs`` only parallelizes a cache-missed build; it is deliberately
    NOT part of the cache key, because the built world is byte-identical
    at any ``jobs`` — a world built with 8 workers is a valid hit for a
    serial request and vice versa.
    """
    from repro.scenario.world import PaperWorld

    def tell(message):
        if note is not None:
            note(message)
        elif not quiet:
            print(message, file=sys.stderr)

    path = cached_world_path(params, cache_dir)
    if path is None:
        return PaperWorld.build(params=params, quiet=quiet, jobs=jobs)
    try:
        world = load_world(path, params)
        tell(f"(loaded cached world from {path})")
        return world
    except CacheMiss as miss:
        tell(f"(world cache miss: {miss})")
    world = PaperWorld.build(params=params, quiet=quiet, jobs=jobs)
    try:
        save_world(world, path)
        tell(f"(cached world to {path})")
    except OSError as exc:
        tell(f"(could not write world cache {path}: {exc})")
    return world
