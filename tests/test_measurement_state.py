"""Tests for the lazy amplifier-state manager."""

import pytest

from repro.attack.scanner import RESEARCH_SCANNERS
from repro.measurement import AmplifierStateManager
from repro.ntp.constants import IMPL_XNTPD
from repro.population import PoolParams, build_host_pool
from repro.net import ASRegistry, PolicyBlockList
from repro.sim.events import AttackPulse
from repro.util import RngStream, date_to_sim


@pytest.fixture(scope="module")
def host():
    rng = RngStream(11, "state-test")
    registry = ASRegistry(rng.child("asn"), n_ases=300)
    pbl = PolicyBlockList(registry)
    pool = build_host_pool(rng.child("hosts"), registry, pbl, PoolParams(scale=0.0002))
    # Pick a host guaranteed to answer the probed implementation and that
    # never restarts (so retention assertions are deterministic).
    for candidate in pool.monlist_hosts:
        if (
            candidate.answers_implementation(IMPL_XNTPD)
            and candidate.restart_interval is None
            and candidate.birth == 0.0
            and not candidate.is_mega
        ):
            return candidate
    raise AssertionError("no suitable host in pool")


def make_manager():
    return AmplifierStateManager(RngStream(12, "mgr"), RESEARCH_SCANNERS)


def test_server_materialized_once(host):
    manager = make_manager()
    a = manager.server_for(host)
    b = manager.server_for(host)
    assert a is b
    assert manager.n_materialized == 1
    assert manager.is_materialized(host.ip)


def test_sync_is_monotonic(host):
    manager = make_manager()
    manager.sync(host, date_to_sim(2014, 1, 10))
    with pytest.raises(ValueError):
        manager.sync(host, date_to_sim(2014, 1, 1))


def test_background_clients_appear(host):
    manager = make_manager()
    server = manager.sync(host, date_to_sim(2014, 1, 10))
    # Every background client that has started polling appears.
    expected = host.clients.state_at(date_to_sim(2014, 1, 10))
    for ip, port, count, first, last in expected:
        record = server.table.get(ip)
        assert record is not None
        assert record.count == count


def test_sync_idempotent_for_background(host):
    manager = make_manager()
    t = date_to_sim(2014, 1, 10)
    a = manager.sync(host, t).table.entries_mru(t)
    b = manager.sync(host, t).table.entries_mru(t)
    assert a == b


def test_research_scanners_recorded(host):
    manager = make_manager()
    t = date_to_sim(2014, 2, 1)
    server = manager.sync(host, t)
    onp = next(s for s in RESEARCH_SCANNERS if s.name == "onp-monlist")
    record = server.table.get(onp.ip)
    assert record is not None
    # Four ONP sweeps by Feb 1 (Jan 10, 17, 24, 31).
    assert record.count == 4
    assert record.mode == 7


def test_attack_pulse_applied_between_syncs(host):
    manager = make_manager()
    t0 = date_to_sim(2014, 1, 10)
    manager.sync(host, t0)
    pulse = AttackPulse(
        start=t0 + 86400,
        duration=60.0,
        victim_ip=0xDEADBEEF,
        victim_port=80,
        amplifier_ip=host.ip,
        query_rate=10.0,
        mode=7,
        spoofer_ttl=109,
    )
    manager.register_pulses([pulse])
    server = manager.sync(host, t0 + 7 * 86400)
    record = server.table.get(0xDEADBEEF)
    assert record is not None
    assert record.count == 600


def test_pulse_not_applied_twice(host):
    manager = make_manager()
    t0 = date_to_sim(2014, 1, 10)
    pulse = AttackPulse(
        start=t0 + 100,
        duration=10.0,
        victim_ip=0xCAFE,
        victim_port=80,
        amplifier_ip=host.ip,
        query_rate=10.0,
        mode=7,
        spoofer_ttl=109,
    )
    manager.register_pulses([pulse])
    manager.sync(host, t0 + 1000)
    server = manager.sync(host, t0 + 2000)
    assert server.table.get(0xCAFE).count == 100


def test_inflight_pulse_not_recorded(host):
    manager = make_manager()
    t0 = date_to_sim(2014, 1, 10)
    pulse = AttackPulse(
        start=t0 - 50,
        duration=1000.0,
        victim_ip=0xBEEF,
        victim_port=80,
        amplifier_ip=host.ip,
        query_rate=10.0,
        mode=7,
        spoofer_ttl=109,
    )
    manager.register_pulses([pulse])
    server = manager.sync(host, t0)
    assert server.table.get(0xBEEF) is None
    # Once the pulse has ended it shows up whole.
    server = manager.sync(host, t0 + 2000)
    assert server.table.get(0xBEEF).count == 10000


def test_malicious_activity_creates_scanner_entries(host):
    manager = make_manager()
    from repro.sim.events import ScanSweep

    t0 = date_to_sim(2014, 1, 10)
    # Enough summed coverage (8 x 0.9 = 7.2 expected hits) that the
    # host's deterministic per-host stream certainly lands some: hit
    # counts are drawn from a stream keyed by (manager rng, host ip).
    sweeps = [
        ScanSweep(
            t=t0 - i * 86400,
            scanner_ip=50000 + i,
            kind="malicious",
            mode=7,
            coverage=0.9,
            targets_per_second=100.0,
            ttl=54,
            duration=3600.0,
        )
        for i in range(8)
    ]
    manager.register_malicious_activity(sweeps)
    server = manager.sync(host, t0 + 10)
    scanner_ips = range(50000, 50008)
    scanner_records = [server.table.get(ip) for ip in scanner_ips if ip in server.table]
    assert scanner_records  # high coverage => hits expected


def test_restart_flushes_old_state():
    """A host with a short restart interval forgets pre-flush history."""
    rng = RngStream(13, "restart-test")
    registry = ASRegistry(rng.child("asn"), n_ases=300)
    pbl = PolicyBlockList(registry)
    pool = build_host_pool(rng.child("hosts"), registry, pbl, PoolParams(scale=0.0002))
    host = next(
        h
        for h in pool.monlist_hosts
        if h.restart_interval is not None and h.restart_interval < 5 * 86400 and h.birth == 0.0
    )
    manager = make_manager()
    t0 = date_to_sim(2014, 1, 10)
    pulse = AttackPulse(
        start=t0 + 3600,
        duration=10.0,
        victim_ip=0xF00D,
        victim_port=80,
        amplifier_ip=host.ip,
        query_rate=100.0,
        mode=7,
        spoofer_ttl=109,
    )
    manager.register_pulses([pulse])
    manager.sync(host, t0 + 7200)
    # After more than a restart interval, the victim entry must be gone.
    server = manager.sync(host, t0 + 3600 + 3 * host.restart_interval)
    assert server.table.get(0xF00D) is None
