"""Mitigation mechanics (§6, §7.1, and the paper's future-work questions).

Three levers the paper discusses but could not experiment with:

* :mod:`repro.mitigation.notification` — the CERT/direct-operator
  notification campaigns of §6.4 (Kührer et al.), modeled as a hazard
  boost whose effect can be switched off for counterfactual runs;
* :mod:`repro.mitigation.ratelimit` — the NTP rate limits Merit deployed
  during the early attacks (§7.1), applied to flow series;
* :mod:`repro.mitigation.bcp38` — source-address-validation adoption
  (BCP 38/84): spoofed attack traffic from filtered networks never
  reaches the amplifiers.
"""

from repro.mitigation.bcp38 import Bcp38Policy, filter_attacks
from repro.mitigation.notification import NotificationCampaign, notified_remediation_model
from repro.mitigation.ratelimit import RateLimitResult, apply_rate_limit

__all__ = [
    "Bcp38Policy",
    "filter_attacks",
    "NotificationCampaign",
    "notified_remediation_model",
    "RateLimitResult",
    "apply_rate_limit",
]
