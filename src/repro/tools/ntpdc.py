"""An ntpdc-style diagnostic client.

The paper's measurements were made with (the logic of) the Linux ``ntpdc``
tool: "The Linux ntpdc tool ... when used to query a server with the
monlist command, tries each of two implementation types, one at a time,
before failing" (§3.1).  This module reproduces that client behavior
against simulated servers, raw packets end to end:

* :func:`ntpdc_monlist` — sends mode-7 requests, trying the modern
  implementation code first and falling back to the legacy one, reassembles
  the multi-packet reply in sequence order, and returns decoded entries;
* :func:`ntpdc_sysinfo` — sends a mode-6 READVAR and parses the system
  variables.

The ONP scans differed from ntpdc in exactly one way the paper flags as a
limitation: they sent only *one* implementation's packet.  ``fallback=False``
reproduces the ONP behavior; the default reproduces ntpdc's.
"""

from dataclasses import dataclass, field

from repro.ntp.constants import (
    CTL_OP_READVAR,
    IMPL_XNTPD,
    IMPL_XNTPD_OLD,
    REQ_MON_GETLIST,
    REQ_MON_GETLIST_1,
)
from repro.ntp.variables import parse_system_variables
from repro.ntp.wire import decode_mode6, decode_mode7, encode_mode6_request, encode_mode7_request

__all__ = ["NtpdcResult", "ntpdc_monlist", "ntpdc_sysinfo"]

#: (implementation, request code) pairs in ntpdc's try order.
_IMPL_ATTEMPTS = (
    (IMPL_XNTPD, REQ_MON_GETLIST_1),
    (IMPL_XNTPD_OLD, REQ_MON_GETLIST),
)


@dataclass
class NtpdcResult:
    """Outcome of one ntpdc exchange."""

    responded: bool
    implementation: int = None
    entries: tuple = field(default_factory=tuple)
    n_packets: int = 0
    payload_bytes: int = 0
    attempts: int = 0

    def __bool__(self):
        return self.responded


def ntpdc_monlist(server, client_ip, now, client_port=50123, fallback=True, max_packets=10_000):
    """Run ``ntpdc -c monlist`` against a simulated server.

    Tries the modern implementation code first; with ``fallback=True``
    (real ntpdc) retries with the legacy code when the first attempt gets
    no answer.  Returns an :class:`NtpdcResult` whose ``entries`` are in
    MRU order.
    """
    attempts = 0
    for implementation, request_code in _IMPL_ATTEMPTS:
        attempts += 1
        request = encode_mode7_request(implementation, request_code)
        reply = server.handle_datagram(request, client_ip, client_port, now)
        if reply is not None:
            packets = reply.materialize(max_packets=max_packets)
            decoded = sorted((decode_mode7(p) for p in packets), key=lambda p: p.sequence)
            entries = []
            for packet in decoded:
                entries.extend(packet.items)
            return NtpdcResult(
                responded=True,
                implementation=implementation,
                entries=tuple(entries),
                n_packets=len(packets),
                payload_bytes=sum(len(p) for p in packets),
                attempts=attempts,
            )
        if not fallback:
            break
    return NtpdcResult(responded=False, attempts=attempts)


def ntpdc_sysinfo(server, client_ip, now, client_port=50123):
    """Run a READVAR ("sysinfo"/version) query; returns a variables dict or
    ``None`` when the server does not answer mode 6."""
    request = encode_mode6_request(CTL_OP_READVAR)
    reply = server.handle_datagram(request, client_ip, client_port, now)
    if reply is None:
        return None
    fragments = sorted((decode_mode6(p) for p in reply.packets), key=lambda p: p.offset)
    payload = b"".join(f.data for f in fragments)
    return parse_system_variables(payload)
