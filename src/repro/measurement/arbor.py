"""The global traffic/attack analytics collector (§2's Arbor dataset).

Models a mitigation vendor's view of between a third and half of Internet
traffic (71.5 Tbps daily average in the paper's window):

* **daily traffic** — total, NTP, and DNS bits per second.  NTP traffic is
  integrated from the simulated attack campaign (victim-direction bytes plus
  the spoofed query direction) on top of a small benign-NTP baseline; DNS
  hovers around 0.15% of traffic throughout (Figure 1).
* **monthly labeled attacks** — the collector's proprietary-style attack
  labeling: an attack is counted when its bandwidth clears the collector's
  visibility threshold.  Non-NTP attacks (SYN floods, DNS reflection, ...)
  are synthesized at the paper's reported base rate (~300K/month, ~90%
  small / 10% medium / 1% large); NTP attacks come from the simulated
  campaign (Figure 2).
"""

from collections import defaultdict
from dataclasses import dataclass, field

from repro.util.simtime import DAY, day_index, month_key

__all__ = [
    "SIZE_SMALL",
    "SIZE_MEDIUM",
    "SIZE_LARGE",
    "size_bin",
    "DailyTraffic",
    "MonthlyAttackStats",
    "ArborDataset",
    "ArborCollector",
]

SIZE_SMALL = "small"  # < 2 Gbps
SIZE_MEDIUM = "medium"  # 2 - 20 Gbps
SIZE_LARGE = "large"  # > 20 Gbps


def size_bin(bps):
    """Figure 2's attack size bins."""
    if bps < 2e9:
        return SIZE_SMALL
    if bps <= 20e9:
        return SIZE_MEDIUM
    return SIZE_LARGE


@dataclass(frozen=True)
class DailyTraffic:
    """One day's traffic averages, in bits per second."""

    day: int  # day index since the sim epoch
    total_bps: float
    ntp_bps: float
    dns_bps: float

    @property
    def ntp_fraction(self):
        return self.ntp_bps / self.total_bps

    @property
    def dns_fraction(self):
        return self.dns_bps / self.total_bps


@dataclass
class MonthlyAttackStats:
    """Labeled attack counts for one month, split vector x size bin."""

    month: str
    ntp: dict = field(default_factory=lambda: {SIZE_SMALL: 0, SIZE_MEDIUM: 0, SIZE_LARGE: 0})
    other: dict = field(default_factory=lambda: {SIZE_SMALL: 0, SIZE_MEDIUM: 0, SIZE_LARGE: 0})

    def ntp_fraction(self, bin_name=None):
        """Fraction of attacks that are NTP, overall or within one bin."""
        if bin_name is None:
            ntp = sum(self.ntp.values())
            total = ntp + sum(self.other.values())
        else:
            ntp = self.ntp[bin_name]
            total = ntp + self.other[bin_name]
        if total == 0:
            return 0.0
        return ntp / total

    @property
    def total_attacks(self):
        return sum(self.ntp.values()) + sum(self.other.values())


@dataclass
class ArborDataset:
    daily: list = field(default_factory=list)
    monthly_attacks: dict = field(default_factory=dict)
    #: Day indexes inside the collection window with no daily record
    #: (collector outages); empty for a clean apparatus.
    missing_days: list = field(default_factory=list)

    def traffic_series(self):
        """[(day, ntp fraction, dns fraction)] for Figure 1."""
        return [(d.day, d.ntp_fraction, d.dns_fraction) for d in self.daily]

    def peak_ntp_day(self):
        if not self.daily:
            return None
        return max(self.daily, key=lambda d: d.ntp_bps)


#: The paper reports ~300K labeled attacks per month globally, roughly 90%
#: small / 10% medium / 1% large.
BASELINE_MONTHLY_ATTACKS_FULL = 300_000
#: Size split of the *labeled* non-NTP background.  Arbor's public "90%
#: small / 10% medium / 1% large" describes all attacks; the labeled subset
#: the NTP fractions of Figure 2 are computed against is far more
#: small-dominated once NTP is excluded (working the figure's own numbers
#: backwards: ~30K labeled mediums of which 21K were NTP in February).
BASELINE_BIN_SPLIT = {SIZE_SMALL: 0.975, SIZE_MEDIUM: 0.022, SIZE_LARGE: 0.003}


class ArborCollector:
    """Builds the Arbor-style dataset from the simulated world."""

    def __init__(
        self,
        rng,
        scale=0.01,
        total_bps_full=71.5e12,
        ntp_baseline_fraction=0.9e-5,
        dns_fraction=0.0015,
        visibility_threshold_bps=1.0e9,
        faults=None,
    ):
        self._rng = rng.child("arbor")
        self._scale = scale
        self._total_bps = total_bps_full * scale
        self._ntp_baseline = ntp_baseline_fraction
        self._dns_fraction = dns_fraction
        self._threshold = visibility_threshold_bps
        #: Optional :class:`~repro.faults.FaultInjector`; missing-day draws
        #: come from the injector's streams, never ``self._rng``.
        self._faults = faults

    # -- traffic ------------------------------------------------------------------

    def _attack_bytes_per_day(self, attacks):
        """Integrate victim-direction attack traffic into per-day bytes.

        The spoofed query direction adds the amplification-factor's worth
        less; a flat 4% overhead approximates it (median BAF ≈ 4 means the
        query side is ~1/4 of small responses, but most *bytes* ride the
        heavy tail where BAF is far larger).
        """
        per_day = defaultdict(float)
        for attack in attacks:
            start = attack.start
            remaining = attack.duration
            bps = attack.target_bps
            while remaining > 0:
                day = day_index(start)
                day_end = (day + 1) * DAY
                span = min(remaining, day_end - start)
                per_day[day] += bps / 8.0 * span
                start += span
                remaining -= span
        return {day: volume * 1.04 for day, volume in per_day.items()}

    def collect(self, attacks, start, end):
        """Build the dataset over simulation window [start, end)."""
        if end <= start:
            raise ValueError("end must follow start")
        dataset = ArborDataset()
        attack_bytes = self._attack_bytes_per_day(attacks)
        day = day_index(start)
        last_day = day_index(end - 1)
        while day <= last_day:
            if self._faults is not None and self._faults.arbor_missing(day):
                # Collector outage: no daily record at all for this day.
                dataset.missing_days.append(day)
                day += 1
                continue
            total = self._total_bps * (1.0 + 0.03 * float(self._rng.normal()))
            ntp = self._ntp_baseline * total + attack_bytes.get(day, 0.0) * 8.0 / DAY
            dns = self._dns_fraction * total * (1.0 + 0.05 * float(self._rng.normal()))
            dataset.daily.append(
                DailyTraffic(day=day, total_bps=total, ntp_bps=ntp, dns_bps=max(0.0, dns))
            )
            day += 1

        # Monthly labeled attacks.
        monthly = {}
        for attack in attacks:
            if not start <= attack.start < end:
                continue
            if attack.target_bps < self._threshold:
                continue
            key = month_key(attack.start)
            stats = monthly.setdefault(key, MonthlyAttackStats(month=key))
            stats.ntp[size_bin(attack.target_bps)] += 1
        # Synthesize the non-NTP background attack load.
        for record in dataset.daily:
            key = month_key(record.day * DAY)
            monthly.setdefault(key, MonthlyAttackStats(month=key))
        for key, stats in monthly.items():
            base = BASELINE_MONTHLY_ATTACKS_FULL * self._scale
            base = base * (1.0 + 0.05 * float(self._rng.normal()))
            for bin_name, share in BASELINE_BIN_SPLIT.items():
                stats.other[bin_name] = max(0, int(base * share))
        dataset.monthly_attacks = dict(sorted(monthly.items()))
        return dataset
