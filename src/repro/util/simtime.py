"""Simulation time.

Simulation time is measured in seconds since ``SIM_EPOCH`` (2013-09-01
00:00:00 UTC), chosen so the darknet's eight-month observation window
(September 2013 – April 2014) starts at t=0.  The full study window runs
through mid-June 2014 (the twice-daily mega-amplifier probes of §3.4).
"""

import datetime as _dt

__all__ = [
    "SIM_EPOCH",
    "MINUTE",
    "HOUR",
    "DAY",
    "WEEK",
    "STUDY_END",
    "date_to_sim",
    "sim_to_date",
    "format_sim",
    "day_index",
    "hour_index",
    "month_key",
    "week_samples",
    "month_range",
    "SimClock",
    "Timeline",
]

SIM_EPOCH = _dt.datetime(2013, 9, 1, tzinfo=_dt.timezone.utc)

MINUTE = 60
HOUR = 3600
DAY = 86400
WEEK = 7 * DAY


def date_to_sim(year, month=1, day=1, hour=0, minute=0, second=0):
    """Convert a UTC calendar date to simulation seconds."""
    when = _dt.datetime(year, month, day, hour, minute, second, tzinfo=_dt.timezone.utc)
    return (when - SIM_EPOCH).total_seconds()


def sim_to_date(t):
    """Convert simulation seconds to a timezone-aware UTC datetime."""
    return SIM_EPOCH + _dt.timedelta(seconds=float(t))


def format_sim(t, fmt="%Y-%m-%d"):
    """Render a simulation time as a date string (paper-style labels)."""
    return sim_to_date(t).strftime(fmt)


def day_index(t):
    """Whole days elapsed since the simulation epoch."""
    return int(t // DAY)


def hour_index(t):
    """Whole hours elapsed since the simulation epoch."""
    return int(t // HOUR)


def month_key(t):
    """A ``"YYYY-MM"`` key for the month containing ``t`` (paper x-axes)."""
    return sim_to_date(t).strftime("%Y-%m")


STUDY_END = date_to_sim(2014, 6, 14)


def week_samples(first, count, interval=WEEK):
    """Sim times of ``count`` periodic samples starting at ``first``.

    The ONP dataset consists of fifteen weekly samples starting 2014-01-10;
    ``week_samples(date_to_sim(2014, 1, 10), 15)`` reproduces those dates.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    return [first + i * interval for i in range(count)]


def month_range(start_t, end_t):
    """All ``"YYYY-MM"`` keys intersecting the half-open window [start, end)."""
    if end_t <= start_t:
        return []
    keys = []
    cursor = sim_to_date(start_t).replace(day=1, hour=0, minute=0, second=0, microsecond=0)
    end = sim_to_date(end_t)
    while cursor < end:
        keys.append(cursor.strftime("%Y-%m"))
        if cursor.month == 12:
            cursor = cursor.replace(year=cursor.year + 1, month=1)
        else:
            cursor = cursor.replace(month=cursor.month + 1)
    return keys


class SimClock:
    """A monotonically advancing simulation clock.

    The clock refuses to move backwards, which catches event-ordering bugs in
    the orchestration layer early.
    """

    def __init__(self, start=0.0):
        self._now = float(start)

    @property
    def now(self):
        return self._now

    def advance_to(self, t):
        if t < self._now:
            raise ValueError(f"clock cannot move backwards: {t} < {self._now}")
        self._now = float(t)
        return self._now

    def advance_by(self, dt):
        if dt < 0:
            raise ValueError("dt must be non-negative")
        return self.advance_to(self._now + dt)


class Timeline:
    """A piecewise-linear intensity curve over simulation time.

    Used to express calibrated trajectories such as "NTP rises from 1e-5 of
    traffic in November to 1e-2 on Feb 11 then falls to 1e-3 by May".
    Interpolation is linear in ``log10(value)`` when ``log=True``, matching
    how the paper's order-of-magnitude trajectories read on log axes.
    """

    def __init__(self, points, log=False):
        if len(points) < 2:
            raise ValueError("a timeline needs at least two points")
        times = [p[0] for p in points]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("timeline points must be strictly increasing in time")
        if log and any(p[1] <= 0 for p in points):
            raise ValueError("log timelines need positive values")
        self._points = [(float(t), float(v)) for t, v in points]
        self._log = bool(log)

    def value_at(self, t):
        """Interpolated value at time ``t`` (clamped at the endpoints)."""
        points = self._points
        if t <= points[0][0]:
            return points[0][1]
        if t >= points[-1][0]:
            return points[-1][1]
        for (t0, v0), (t1, v1) in zip(points, points[1:]):
            if t0 <= t <= t1:
                frac = (t - t0) / (t1 - t0)
                if self._log:
                    import math

                    return 10 ** (math.log10(v0) + frac * (math.log10(v1) - math.log10(v0)))
                return v0 + frac * (v1 - v0)
        raise AssertionError("unreachable: t within range but no segment found")

    def __call__(self, t):
        return self.value_at(t)

    @property
    def start(self):
        return self._points[0][0]

    @property
    def end(self):
        return self._points[-1][0]
