"""The paper's analysis pipeline.

Everything here consumes *dataset artifacts* (probe captures, flow
aggregates, telescope counters) — never the simulator's ground truth — so
the pipeline would run unchanged over real data with the same schemas.
"""

from repro.analysis.amplification import (
    MegaCensus,
    aggregate_bytes_per_amplifier,
    mega_amplifier_census,
    on_wire_baf,
    payload_baf,
    sample_baf_boxplot,
    version_sample_baf_boxplot,
)
from repro.analysis.churn import ChurnReport, churn_report
from repro.analysis.concentration import ConcentrationReport, as_concentration
from repro.analysis.context import AnalysisContext
from repro.analysis.local import (
    TtlForensics,
    common_scanner_timeline,
    coordination_report,
    top_amplifier_table,
    top_victim_table,
    ttl_forensics,
)
from repro.analysis.monlist_parse import (
    ParsedSample,
    ParseStats,
    ReconstructedTable,
    add_parse_calls,
    parse_call_count,
    parse_corpus,
    parse_sample,
    reconstruct_table,
    reconstruct_table_fast,
    reconstruct_table_lenient,
)
from repro.analysis.parse_cache import load_or_parse_corpus
from repro.analysis.quality import QualityReport, ReconciliationCheck, quality_report
from repro.analysis.remediation import (
    AmplifierCountRow,
    amplifier_counts,
    continent_remediation,
    overlap_with_dns,
    pool_relative_to_peak,
    subgroup_reductions,
    subset_counts,
    weeks_since,
)
from repro.analysis.scanning import ScanningReport, darknet_report, scanning_leads_attacks_by
from repro.analysis.timeseries import (
    attack_fraction_rows,
    daily_attack_counts,
    peak_traffic_date,
    traffic_fractions,
)
from repro.analysis.versions import VersionReport, os_family_of, parse_version_captures
from repro.analysis.victimology import (
    CLASS_NON_VICTIM,
    CLASS_SCANNER,
    CLASS_VICTIM,
    VictimologyReport,
    analyze_dataset,
    analyze_sample,
    classify_entry,
)

__all__ = [
    "MegaCensus",
    "aggregate_bytes_per_amplifier",
    "mega_amplifier_census",
    "on_wire_baf",
    "payload_baf",
    "sample_baf_boxplot",
    "version_sample_baf_boxplot",
    "ChurnReport",
    "churn_report",
    "ConcentrationReport",
    "as_concentration",
    "AnalysisContext",
    "TtlForensics",
    "common_scanner_timeline",
    "coordination_report",
    "top_amplifier_table",
    "top_victim_table",
    "ttl_forensics",
    "ParsedSample",
    "ParseStats",
    "ReconstructedTable",
    "add_parse_calls",
    "parse_call_count",
    "parse_corpus",
    "parse_sample",
    "reconstruct_table",
    "reconstruct_table_fast",
    "reconstruct_table_lenient",
    "load_or_parse_corpus",
    "QualityReport",
    "ReconciliationCheck",
    "quality_report",
    "AmplifierCountRow",
    "amplifier_counts",
    "continent_remediation",
    "overlap_with_dns",
    "pool_relative_to_peak",
    "subgroup_reductions",
    "subset_counts",
    "weeks_since",
    "ScanningReport",
    "darknet_report",
    "scanning_leads_attacks_by",
    "attack_fraction_rows",
    "daily_attack_counts",
    "peak_traffic_date",
    "traffic_fractions",
    "VersionReport",
    "os_family_of",
    "parse_version_captures",
    "CLASS_NON_VICTIM",
    "CLASS_SCANNER",
    "CLASS_VICTIM",
    "VictimologyReport",
    "analyze_dataset",
    "analyze_sample",
    "classify_entry",
]
