"""Attack campaign generation (the attacker ecosystem of §5.2).

The model separates three actor layers, as the paper does:

* **booters** — a small number of DDoS-for-hire services, each holding a
  scanned *amplifier list* that goes stale as remediation proceeds and is
  refreshed periodically.  Reusing one list across attacks produces the
  coordinated multi-amplifier attacks §7.2 observes (the same local
  amplifiers repeatedly used together).
* **bots** — spoofed-source query senders with Windows TTLs (§7.2's TTL
  forensics: attack traffic mode TTL ≈109 vs scanning ≈54).
* **attacks** — one victim, one UDP port, a start/duration, a target
  bandwidth, and a set of amplifier legs; the per-amplifier query rate is
  derived from the target bandwidth and each amplifier's reply size.

Attack intensity follows the paper's timeline: negligible in November,
ignition in mid-December (a week after scanning ramps), a peak on
February 10-12 driven by the CloudFlare/OVH event, and a decline through
April (Figures 1, 2, 7).
"""

import math
from dataclasses import dataclass

from repro.attack.scanner import windows_observed_ttl
from repro.sim.events import AttackPulse
from repro.util.simtime import DAY, HOUR, WEEK, date_to_sim, Timeline

__all__ = ["AttackSpec", "Booter", "CampaignParams", "AttackCampaign"]

#: Ground-truth attack starts per hour at full scale.
ATTACK_INTENSITY_FULL = Timeline(
    [
        (date_to_sim(2013, 11, 1), 1.0),
        (date_to_sim(2013, 12, 1), 4.0),
        (date_to_sim(2013, 12, 15), 15.0),
        (date_to_sim(2013, 12, 20), 120.0),
        (date_to_sim(2014, 1, 5), 250.0),
        (date_to_sim(2014, 1, 20), 400.0),
        (date_to_sim(2014, 2, 5), 700.0),
        (date_to_sim(2014, 2, 10), 2600.0),
        (date_to_sim(2014, 2, 12), 3200.0),
        (date_to_sim(2014, 2, 14), 1500.0),
        (date_to_sim(2014, 2, 24), 900.0),
        (date_to_sim(2014, 3, 15), 650.0),
        (date_to_sim(2014, 4, 10), 380.0),
        (date_to_sim(2014, 4, 30), 260.0),
    ]
)

#: Median attack duration (seconds): very short early, ~40 s from
#: mid-February (§4.3.4).
DURATION_MEDIAN = Timeline(
    [
        (date_to_sim(2013, 11, 1), 12.0),
        (date_to_sim(2014, 1, 10), 15.0),
        (date_to_sim(2014, 2, 14), 40.0),
        (date_to_sim(2014, 4, 30), 40.0),
    ]
)

#: Duration log-sigma: the early tail reaches ~6.5 hours at the 95th
#: percentile, declining to ~50 minutes by April.
DURATION_SIGMA = Timeline(
    [
        (date_to_sim(2013, 11, 1), 3.3),
        (date_to_sim(2014, 1, 10), 3.3),
        (date_to_sim(2014, 2, 14), 2.6),
        (date_to_sim(2014, 4, 30), 2.2),
    ]
)

#: Median amplifiers per attack: tens early, a handful late (§6.3: the
#: number of amplifiers per victim fell by an order of magnitude while each
#: remaining amplifier was worked harder).
AMPS_PER_ATTACK_MEDIAN = Timeline(
    [
        (date_to_sim(2013, 11, 1), 30.0),
        (date_to_sim(2014, 1, 24), 22.0),
        (date_to_sim(2014, 2, 21), 8.0),
        (date_to_sim(2014, 4, 30), 3.0),
    ]
)

#: The publicly-disclosed OVH/CloudFlare event window (§4.4).
OVH_EVENT_START = date_to_sim(2014, 2, 10)
OVH_EVENT_END = date_to_sim(2014, 2, 13)


@dataclass
class Booter:
    """A DDoS-for-hire service with a (staling) amplifier list."""

    booter_id: int
    popularity: float
    amplifier_list: list
    list_refreshed: float


@dataclass
class AttackSpec:
    """One attack: a victim, a window, and its amplifier legs."""

    attack_id: int
    victim: object  # population.victims.Victim
    port: int
    start: float
    duration: float
    mode: int
    target_bps: float
    amplifiers: list  # NtpHost legs participating
    query_rate_per_amp: float
    spoofer_ttl: int
    booter_id: int

    @property
    def end(self):
        return self.start + self.duration

    @property
    def size_gbps(self):
        return self.target_bps / 1e9

    def pulses(self):
        """One :class:`AttackPulse` per amplifier leg."""
        out = []
        for host in self.amplifiers:
            out.append(
                AttackPulse(
                    start=self.start,
                    duration=self.duration,
                    victim_ip=self.victim.ip,
                    victim_port=self.port,
                    amplifier_ip=host.ip,
                    query_rate=self.query_rate_per_amp,
                    mode=self.mode,
                    spoofer_ttl=self.spoofer_ttl,
                )
            )
        return out


@dataclass(frozen=True)
class CampaignParams:
    """Scale and calibration knobs for attack generation."""

    scale: float = 0.01
    start: float = date_to_sim(2013, 11, 1)
    end: float = date_to_sim(2014, 5, 1)
    n_booters: int = 24
    #: Booter amplifier lists hold this fraction of the alive pool.
    list_fraction: float = 0.15
    list_refresh_interval: float = WEEK
    #: Attack size mixture: mostly small booter hits, a few heavy ones.
    #: The small median is a couple of Mbps — enough to knock a home user
    #: offline, and the reason Figure 6's median victim receives only
    #: hundreds of packets while the mean is millions.
    small_median_bps: float = 3e6
    small_sigma: float = 2.0
    heavy_fraction: float = 0.02
    heavy_median_bps: float = 4e9
    heavy_sigma: float = 1.5
    #: Attackers provision roughly this much bandwidth per amplifier leg;
    #: big attacks therefore recruit hundreds-to-thousands of amplifiers
    #: (CloudFlare's 400 Gbps attack used ~4,500), which keeps per-record
    #: monlist counts in the realistic range.
    target_bps_per_amp: float = 8e6
    #: Per-amplifier spoofed-query rate ceiling (packets/second).
    max_query_rate: float = 20000.0
    #: Fraction of attacks using the mode-6 version vector late in the
    #: window (§3.3: 0.3% of victims by April).
    version_attack_fraction_late: float = 0.004
    ovh_event: bool = True

    def __post_init__(self):
        if self.end <= self.start:
            raise ValueError("end must follow start")
        if not 0 < self.scale <= 1:
            raise ValueError("scale must be in (0, 1]")


class AttackCampaign:
    """Generates the full, chronologically-sorted attack list."""

    def __init__(self, rng, host_pool, victim_pool, params=None):
        self._rng = rng
        self._hosts = host_pool
        self._victims = victim_pool
        self.params = params or CampaignParams()
        #: {id(host): table-only reply bytes} — the estimate depends only on
        #: host.base_clients, which is fixed once the pool is built, and the
        #: booter-list sorts ask for it hundreds of thousands of times.
        self._reply_bytes = {}

    # -- internals -------------------------------------------------------------

    def _estimated_reply_bytes(self, host):
        """Rough on-wire bytes one monlist query elicits from ``host`` —
        used to size query rates the way an attacker would (by observing
        the amplifier)."""
        cached = self._reply_bytes.get(id(host))
        if cached is not None:
            return cached
        from repro.population.amplifiers import estimate_monlist_reply_bytes

        # Ranking/rate-sizing uses the table-only estimate: attackers'
        # list-building scans record reply sizes, not loop pathologies.
        value = estimate_monlist_reply_bytes(host, include_loop=False)
        self._reply_bytes[id(host)] = value
        return value

    def _sample_list(self, rng, t):
        """A booter's amplifier list: a random slice of the alive pool,
        sorted best-amplifiers-first (attackers rank by observed reply
        size, which is why primed/full-table amplifiers get hammered)."""
        alive = self._hosts.monlist_alive(t)
        if not alive:
            return []
        size = max(3, min(len(alive), int(len(alive) * self.params.list_fraction)))
        picks = rng.choice(len(alive), size=size, replace=False)
        amp_list = [alive[int(k)] for k in picks]
        amp_list.sort(key=self._estimated_reply_bytes, reverse=True)
        return amp_list

    def _pick_amplifiers(self, rng, booter, n_amps):
        """Sample ``n_amps`` from a booter list with a strong elite bias:
        most legs come from the top of the (reply-size-sorted) list."""
        amp_list = booter.amplifier_list
        n_amps = min(n_amps, len(amp_list))
        elite = max(5, len(amp_list) // 50)
        picked = {}
        for _ in range(n_amps):
            if rng.random() < 0.6:
                index = int(rng.integers(0, min(elite, len(amp_list))))
            else:
                index = int(rng.integers(0, len(amp_list)))
            picked[index] = amp_list[index]
        return list(picked.values())

    def _make_booters(self, rng, t):
        booters = []
        for i in range(self.params.n_booters):
            booters.append(
                Booter(
                    booter_id=i,
                    popularity=float(rng.bounded_pareto(1.0, 1.0, 50.0)),
                    amplifier_list=self._sample_list(rng, t),
                    list_refreshed=t,
                )
            )
        return booters

    def _refresh_booter(self, rng, booter, t):
        fresh = self._sample_list(rng, t)
        if fresh:
            booter.amplifier_list = fresh
        booter.list_refreshed = t

    def _sample_size_bps(self, rng, t):
        p = self.params
        heavy_frac = p.heavy_fraction
        if p.ovh_event and OVH_EVENT_START <= t <= OVH_EVENT_END:
            heavy_frac = min(0.5, heavy_frac * 4)
        # Cap the rare monster draws at a few percent of the scaled traffic
        # denominator: at small scales a single absolutely-sized 100+ Gbps
        # attack would dominate the world's whole NTP traffic curve (at
        # full scale the cap is far above any draw).  The floor keeps the
        # >20 Gbps "Large" bin of Figure 2 populated at every scale.
        size_cap = max(25e9, min(400e9, 0.02 * 71.5e12 * p.scale))
        if rng.random() < heavy_frac:
            return min(size_cap, float(rng.lognormal_for_median(p.heavy_median_bps, p.heavy_sigma)))
        return min(size_cap, float(rng.lognormal_for_median(p.small_median_bps, p.small_sigma)))

    def _sample_duration(self, rng, t):
        median = DURATION_MEDIAN(t)
        sigma = DURATION_SIGMA(t)
        return float(min(24 * HOUR, max(5.0, rng.lognormal_for_median(median, sigma))))

    # -- generation -------------------------------------------------------------

    def generate(self):
        """All attacks in the window, sorted by start time."""
        p = self.params
        rng = self._rng.child("attacks")
        booter_rng = self._rng.child("booters")
        ttl_rng = self._rng.child("spoofer-ttl")
        booters = self._make_booters(booter_rng, p.start)
        booter_weights = [b.popularity for b in booters]
        total_w = sum(booter_weights)
        booter_p = [w / total_w for w in booter_weights]

        attacks = []
        attack_id = 0
        day = p.start
        while day < p.end:
            # Stale lists get refreshed on a weekly cadence.
            for booter in booters:
                if day - booter.list_refreshed >= p.list_refresh_interval:
                    self._refresh_booter(booter_rng, booter, day)
            day_end = min(day + DAY, p.end)
            expected = ATTACK_INTENSITY_FULL((day + day_end) / 2) * 24 * p.scale
            n_attacks = int(rng.poisson(expected))
            starts = rng.uniform(day, day_end, size=n_attacks) if n_attacks else []
            for start in sorted(starts):
                victim_choices = self._victims.sample_active(rng, start, 1)
                if not victim_choices:
                    continue
                victim = victim_choices[0]
                booter = booters[int(rng.choice(len(booters), p=booter_p))]
                if not booter.amplifier_list:
                    continue
                duration = self._sample_duration(rng, start)
                size_bps = self._sample_size_bps(rng, start)
                n_amps = max(1, int(rng.lognormal_for_median(AMPS_PER_ATTACK_MEDIAN(start), 0.9)))
                # Big attacks recruit enough amplifiers to reach the target
                # bandwidth at sane per-amplifier rates.
                n_amps = max(n_amps, int(size_bps / p.target_bps_per_amp))
                amps = self._pick_amplifiers(rng, booter, n_amps)
                # Stale entries that remediated since the list was built
                # silently stop amplifying; attackers don't notice per-hit.
                live = [h for h in amps if h.monlist_active(start)]
                if not live:
                    continue
                version_p = (
                    p.version_attack_fraction_late
                    if start >= date_to_sim(2014, 2, 15)
                    else p.version_attack_fraction_late / 4
                )
                mode = 6 if rng.random() < version_p else 7
                reply = sum(self._estimated_reply_bytes(h) for h in live) / len(live)
                rate = size_bps / 8.0 / max(1, len(live)) / max(300.0, reply)
                rate = float(min(p.max_query_rate, max(0.5, rate)))
                port = victim.ports[int(rng.integers(0, len(victim.ports)))]
                attacks.append(
                    AttackSpec(
                        attack_id=attack_id,
                        victim=victim,
                        port=port,
                        start=float(start),
                        duration=duration,
                        mode=mode,
                        target_bps=size_bps,
                        amplifiers=live,
                        query_rate_per_amp=rate,
                        spoofer_ttl=windows_observed_ttl(ttl_rng),
                        booter_id=booter.booter_id,
                    )
                )
                attack_id += 1
            day = day_end
        if self.params.ovh_event:
            attacks.extend(self._ovh_event_attacks(rng, ttl_rng, booters, attack_id))
        attacks.sort(key=lambda a: a.start)
        return attacks

    def _ovh_event_attacks(self, rng, ttl_rng, booters, next_id):
        """The record-setting February 10-12 campaign against the OVH-like
        hoster: long, heavy, many-amplifier attacks on its victims."""
        ovh_victims = [
            v
            for v in self._victims.victims
            if v.active_at(OVH_EVENT_START + DAY) or v.active_at(OVH_EVENT_START)
        ]
        # Targets inside the top (OVH-like) AS.
        top_asn = None
        from collections import Counter

        counts = Counter(v.asn for v in self._victims.victims)
        if counts:
            top_asn = counts.most_common(1)[0][0]
        targets = [v for v in ovh_victims if v.asn == top_asn]
        if not targets:
            return []
        n_event = max(3, int(rng.poisson(150 * self.params.scale)))
        # Individual event attacks are huge (the headline attack peaked near
        # 400 Gbps), but a handful of absolutely-sized monsters would swamp
        # a small world's scaled traffic denominator, so sizes are capped at
        # a few percent of the scaled global total.  At full scale the cap
        # is inactive.
        size_cap = max(25e9, min(400e9, 0.02 * 71.5e12 * self.params.scale))
        out = []
        lists = [b for b in booters if b.amplifier_list]
        if not lists:
            return []
        for i in range(n_event):
            victim = targets[int(rng.integers(0, len(targets)))]
            booter = lists[int(rng.integers(0, len(lists)))]
            start = OVH_EVENT_START + float(rng.uniform(0, OVH_EVENT_END - OVH_EVENT_START))
            duration = float(min(24 * HOUR, rng.lognormal_for_median(HOUR, 0.9)))
            live = [h for h in booter.amplifier_list if h.monlist_active(start)]
            if not live:
                continue
            n_amps = min(len(live), max(10, int(rng.lognormal_for_median(60, 0.6))))
            picks = rng.choice(len(live), size=n_amps, replace=False)
            amps = [live[int(k)] for k in picks]
            size_bps = min(size_cap, float(rng.lognormal_for_median(15e9, 0.9)))
            reply = sum(self._estimated_reply_bytes(h) for h in amps) / len(amps)
            rate = size_bps / 8.0 / len(amps) / max(300.0, reply)
            out.append(
                AttackSpec(
                    attack_id=next_id + i,
                    victim=victim,
                    port=victim.ports[0],
                    start=start,
                    duration=duration,
                    mode=7,
                    target_bps=size_bps,
                    amplifiers=amps,
                    query_rate_per_amp=float(min(self.params.max_query_rate, max(1.0, rate))),
                    spoofer_ttl=windows_observed_ttl(ttl_rng),
                    booter_id=booter.booter_id,
                )
            )
        return out
