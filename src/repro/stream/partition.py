"""Sharded stream ingestion: fixed logical blocks, query-time reduction.

The stream is partitioned into :data:`STREAM_BLOCKS` **logical
substreams** by a deterministic per-kind key (captures by amplifier IP —
the AMON partitioning — darknet by scanner IP, ISP cells by victim IP,
arbor rows by day, sweeps by their window).  ``--shards N`` only decides
how many *physical workers* consume those blocks; the answer is always
the merge of the same sixteen block states folded in fixed block order,
which is why every query result is byte-identical at any shard count —
the same fixed-subproblem trick the batch build uses to be identical at
any ``--jobs``.

Why the merge is exact
----------------------
Three properties carry the whole contract:

* **Tagged ingest** — the replay is enumerated once and each record is
  tagged with the maximum event time *strictly before* it.  A block
  engine advances its watermark to the tag before offering the record
  (:meth:`~repro.stream.ingest.StreamEngine.ingest_tagged`), so it
  accepts/refuses exactly as the single whole-stream engine would at
  that point.  Per-block ledgers therefore *sum* to the single-engine
  ledger, record for record.
* **Mergeable window state** — block engines run ``keep_state=True``:
  closed windows retain their exact aggregate state (sets, counters,
  per-key sums), and every aggregate is order-free, so per-block states
  union/add losslessly into the whole-window state.
* **Rebuilt sketch folds** — block engines *never* fold window state
  into sketches (``fold_on_close=False``).  The reducer replays the
  single engine's exact fold sequence — closed windows ascending, keys
  sorted within a window — over the *merged* states, so count-min cells
  and the order-sensitive space-saving top-K come out identical to the
  single engine's, even when the top-K is saturated.

The reducer memoizes: once every block's watermark has passed a window
(tracked via barrier/round sync), its merged summary and sketch fold are
immutable — they move into a persistent base, the per-block states are
dropped (freeing block memory), and later reductions only merge the
handful of still-open windows.

Float caveat: per-victim ISP byte totals are bit-exact (each victim
lives in one block, accumulated in arrival order), and every *derived*
float — window byte summaries, the global ``isp_bytes`` total — is an
exactly-rounded ``math.fsum`` folded in window order, so even the float
answers are byte-identical to the single engine's.  The one divergence
left is the ``late_uids`` forensic sample: it concatenates per-block
samples (block order), so on out-of-order streams its *contents* can
differ from the single engine's first-32 arrival-order sample even
though the late *count* is identical.

Physical execution
------------------
In-process (the default when :func:`~repro.util.pool.fork_pool_gate`
vetoes, e.g. on a single CPU): sixteen block engines in the serving
process, records routed synchronously.  Fork mode: ``--shards N``
resident workers (:class:`~repro.util.pool.ResidentPool`), worker ``w``
owning blocks ``w::N``.  Each worker re-enumerates the replay from its
copy-on-write world and filters to its own blocks, so no record payload
ever crosses a pipe; the parent drives position-bounded rounds and
ships only per-window states back at query time.
"""

from __future__ import annotations

import math
import zlib

from repro.stream.ingest import (
    StreamEngine,
    _add_stats,
    _fold_capture_aggregates,
    _fold_isp_aggregates,
    _new_sketches,
    _STATS_FIELDS,
)
from repro.stream.windows import TumblingWindows, WindowSet, _OpenWindow
from repro.util.pool import ResidentPool, available_cpus, fork_pool_gate
from repro.util.simtime import WEEK

__all__ = ["STREAM_BLOCKS", "BlockRouter", "ShardedStream", "tagged_records"]

#: Number of logical substreams.  Fixed — never a function of
#: ``--shards`` — so the merged answer is shard-count-invariant by
#: construction.
STREAM_BLOCKS = 16

_M64 = (1 << 64) - 1

_KINDS = ("sweep", "capture", "darknet", "isp", "arbor")


def _mix64(x):
    """SplitMix64 finalizer: a stable avalanche over the raw key so block
    populations balance; pure arithmetic, so (unlike ``hash``) it is
    independent of ``PYTHONHASHSEED`` and identical across processes."""
    x &= _M64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
    return x ^ (x >> 31)


def _fallback_block(uid):
    """Stable block for records without a natural key (unknown kinds,
    synthetic captures): CRC of the uid repr, never ``hash``."""
    return zlib.crc32(repr(uid).encode("utf-8")) % STREAM_BLOCKS


class BlockRouter:
    """``record -> block`` by the kind's natural partition key."""

    __slots__ = ("_capture_windows",)

    def __init__(self, capture_origin=0.0, capture_width=float(WEEK)):
        self._capture_windows = TumblingWindows(capture_width, origin=capture_origin)

    def block_of(self, record):
        kind = record.kind
        if kind == "capture":
            # Amplifier IP: all probes of one amplifier land in one
            # block, so per-amplifier entry totals accumulate in arrival
            # order exactly as the single engine's do.
            key = getattr(record.payload, "target_ip", None)
            if key is None:
                return _fallback_block(record.uid)
            return _mix64(int(key)) % STREAM_BLOCKS
        if kind == "sweep":
            # By window: a sweep window's coverage list is the only
            # order-sensitive window state, so it gets one contributor.
            return self._capture_windows.index_of(record.t) % STREAM_BLOCKS
        if kind == "darknet":
            return _mix64(int(record.payload)) % STREAM_BLOCKS
        if kind == "isp":
            # Victim IP: per-victim byte totals (floats) accumulate in
            # arrival order inside exactly one block.
            return _mix64(int(record.payload[0])) % STREAM_BLOCKS
        if kind == "arbor":
            return int(record.uid[1]) % STREAM_BLOCKS
        return _fallback_block(record.uid)


def tagged_records(records):
    """Yield ``(pos, pre_max_t, record)`` over a replay.

    ``pre_max_t`` is the maximum event time strictly before ``record``
    in the unpartitioned stream — the tag
    :meth:`~repro.stream.ingest.StreamEngine.ingest_tagged` needs to
    reproduce the single engine's watermark pointwise."""
    pos = 0
    max_t = None
    for record in records:
        yield pos, max_t, record
        pos += 1
        t = record.t
        if max_t is None or t > max_t:
            max_t = t


# -- per-kind state merges ------------------------------------------------
#
# Each takes the per-block ``("open"|"closed", state, records)`` parts of
# one window *in block order* and returns the whole-window ``(state,
# records)``.  Every operation is a lossless union/sum of disjoint or
# order-free contributions; block order only matters for float adds and
# dict insertion order, and block contents are shard-count-invariant.


def _merge_sweep(parts):
    out = StreamEngine._new_sweep_state()
    records = 0
    for _src, state, part_records in parts:
        records += part_records
        out["sweeps"] += state["sweeps"]
        out["outages"] += state["outages"]
        out["coverage"].extend(state["coverage"])
        out["n_captures"] += state["n_captures"]
    return out, records


def _merge_capture(parts):
    out = StreamEngine._new_capture_state()
    records = 0
    stats = out["stats"]
    for _src, state, part_records in parts:
        records += part_records
        src_stats = state["stats"]
        for name in _STATS_FIELDS:
            setattr(stats, name, getattr(stats, name) + getattr(src_stats, name))
        out["amplifiers"] |= state["amplifiers"]
        out["victims"] |= state["victims"]
        for key in (
            "victim_pairs",
            "victim_packets",
            "scanner_entries",
            "non_victim_entries",
        ):
            out[key] += state[key]
        out["max_last_seen"].extend(state["max_last_seen"])
        for key in ("victim_packets_by_ip", "as_packets", "amp_entries"):
            dst = out[key]
            for k, v in state[key].items():
                dst[k] = dst.get(k, 0) + v
    return out, records


def _merge_darknet(parts):
    out = set()
    records = 0
    for _src, state, part_records in parts:
        records += part_records
        out |= state
    return out, records


def _merge_isp(parts):
    out = StreamEngine._new_isp_state()
    records = 0
    victims = out["victims"]
    for _src, state, part_records in parts:
        records += part_records
        out["cells"] += state["cells"]
        for ip, volume in state["victims"].items():
            victims[ip] = victims.get(ip, 0.0) + volume
    return out, records


def _merge_arbor(parts):
    # Day-keyed routing gives arbor windows a single contributor; the
    # fold below is still written to tolerate several.
    out = StreamEngine._new_arbor_state()
    records = 0
    for _src, state, part_records in parts:
        records += part_records
        if state["total_bps"] is not None:
            out["total_bps"] = state["total_bps"]
            out["ntp_bps"] = state["ntp_bps"]
            out["dns_bps"] = state["dns_bps"]
        out["gap"] = out["gap"] or state["gap"]
    return out, records


_MERGERS = {
    "sweep": _merge_sweep,
    "capture": _merge_capture,
    "darknet": _merge_darknet,
    "isp": _merge_isp,
    "arbor": _merge_arbor,
}


class _ShardWorker:
    """Resident fork-pool handler owning blocks ``slot::workers``.

    Re-enumerates the replay inside the worker (the world arrived by
    fork, copy-on-write) and filters to its own blocks, so ingestion
    ships zero record payloads over the pipe — only small control
    messages and, at query time, per-window states."""

    def __init__(self, world, workers, slot, site_name, conf, asn_of, onp_ip):
        from repro.stream.replay import replay_records

        self.router = BlockRouter(conf["capture_origin"], conf["capture_width"])
        self.engines = {
            block: StreamEngine(
                asn_of=asn_of,
                onp_ip=onp_ip,
                keep_state=True,
                fold_on_close=False,
                **conf,
            )
            for block in range(slot, STREAM_BLOCKS, workers)
        }
        self._stream = iter(tagged_records(replay_records(world, site_name)))
        self._pos = 0
        self._max_t = None
        self._done = False

    def advance(self, upto, sync_t, drops):
        """One ingest round: apply memo drops, sync the barrier
        watermark, consume the replay up to position ``upto``."""
        for kind, indices in drops.items():
            for engine in self.engines.values():
                engine.drop_closed_states(kind, indices)
        if sync_t is not None:
            for engine in self.engines.values():
                engine.advance_watermark(sync_t)
        engines = self.engines
        block_of = self.router.block_of
        while self._pos < upto:
            step = next(self._stream, None)
            if step is None:
                self._done = True
                break
            pos, pre_max_t, record = step
            engine = engines.get(block_of(record))
            if engine is not None:
                engine.ingest_tagged(record, pre_max_t)
            self._pos = pos + 1
            t = record.t
            if self._max_t is None or t > self._max_t:
                self._max_t = t
        return {"pos": self._pos, "done": self._done, "max_t": self._max_t}

    def export(self, skip):
        return {
            block: engine.export_state(skip)
            for block, engine in self.engines.items()
        }

    def close(self):
        for engine in self.engines.values():
            if self._max_t is not None:
                engine.advance_watermark(self._max_t)
            engine.close()
        return True


class ShardedStream:
    """N-shard ingestion over the sixteen logical blocks, with a
    query-time reduction that presents the merged
    :class:`~repro.stream.ingest.StreamEngine` surface."""

    def __init__(
        self,
        shards=1,
        *,
        capture_origin=0.0,
        capture_width=float(WEEK),
        skew=0.0,
        asn_of=None,
        onp_ip=None,
        topk_capacity=64,
        cm_epsilon=0.005,
        cm_delta=0.01,
        pool=None,
        pool_info=None,
    ):
        self.shards = max(1, int(shards))
        self.skew = float(skew)
        self._conf = {
            "capture_origin": float(capture_origin),
            "capture_width": float(capture_width),
            "skew": self.skew,
            "topk_capacity": int(topk_capacity),
            "cm_epsilon": float(cm_epsilon),
            "cm_delta": float(cm_delta),
        }
        self._asn_of = asn_of
        self._onp_ip = onp_ip
        self.router = BlockRouter(capture_origin, capture_width)
        #: Monotone change counter, same contract as the engine's.
        self.generation = 0
        self.records_seen = 0
        self._max_t = None
        self._synced_watermark = None
        self._closed = False
        self._merged_cache = None
        # Reduction memo: merged summaries of windows every block's
        # watermark has passed, plus the persistent base their stats and
        # sketch folds moved into (always folded in ascending window
        # order — the single engine's own fold sequence).
        self._memo = {kind: {} for kind in _KINDS}
        self._base_sketches = _new_sketches(topk_capacity, cm_epsilon, cm_delta)
        self._base_stats = {name: 0 for name in _STATS_FIELDS}
        self._base_isp_bytes = 0.0
        self._pool = pool
        self.pool_info = pool_info or {
            "requested": self.shards,
            "engaged": False,
            "reason": "in-process: constructed without a pool",
            "workers": 0,
            "blocks": STREAM_BLOCKS,
            "cpu_count": available_cpus(),
            "mode": "in-process",
        }
        #: True when the workers enumerate the replay themselves and the
        #: service must drive rounds via :meth:`ingest_step` instead of
        #: feeding records through :meth:`ingest`.
        self.drives_ingest = pool is not None
        if pool is None:
            self.blocks = [
                StreamEngine(
                    asn_of=asn_of,
                    onp_ip=onp_ip,
                    keep_state=True,
                    fold_on_close=False,
                    **self._conf,
                )
                for _ in range(STREAM_BLOCKS)
            ]
        else:
            self.blocks = None
            self._pending_drops = {}
            self._done = False

    @classmethod
    def for_world(
        cls,
        world,
        shards=1,
        skew=0.0,
        site_name="merit",
        cpus=None,
        force_fork=False,
        **engine_kwargs,
    ):
        """A sharded stream for ``world``'s replay.

        The fork pool engages only when :func:`fork_pool_gate` says it
        is worth it (``force_fork`` overrides, for tests); otherwise the
        blocks run in-process and the veto reason is recorded in
        :attr:`pool_info` — the same engagement-honesty rule the build
        pools follow."""
        from repro.attack.scanner import ONP_PROBER_IP
        from repro.stream.replay import replay_plan

        plan = replay_plan(world, site_name)
        conf = dict(
            capture_origin=plan["capture_origin"],
            capture_width=plan["capture_width"],
            skew=skew,
            **engine_kwargs,
        )
        asn_of = world.table.asn_of
        shards = max(1, int(shards))
        if cpus is None:
            cpus = available_cpus()
        if force_fork:
            engaged, reason = True, None
        else:
            engaged, reason = fork_pool_gate(
                shards, STREAM_BLOCKS, cpus=cpus, phase="serve-shards"
            )
        workers = min(shards, STREAM_BLOCKS) if engaged else 0
        pool = None
        if engaged:
            def factory(slot):
                return _ShardWorker(
                    world, workers, slot, site_name, conf, asn_of, ONP_PROBER_IP
                )

            pool = ResidentPool(factory, workers, name="stream-shard")
        pool_info = {
            "requested": shards,
            "engaged": engaged,
            "reason": reason,
            "workers": workers,
            "blocks": STREAM_BLOCKS,
            "cpu_count": cpus,
            "mode": "fork" if engaged else "in-process",
        }
        return cls(
            shards=shards,
            asn_of=asn_of,
            onp_ip=ONP_PROBER_IP,
            pool=pool,
            pool_info=pool_info,
            **conf,
        )

    # -- ingest (in-process mode) -----------------------------------------

    def ingest(self, record):
        """Route one record to its block (tagged with the pre-record
        global max, so the block's watermark matches the single
        engine's)."""
        pre_max_t = self._max_t
        t = record.t
        if pre_max_t is None or t > pre_max_t:
            self._max_t = t
        self.records_seen += 1
        self.generation += 1
        block = self.blocks[self.router.block_of(record)]
        return block.ingest_tagged(record, pre_max_t)

    def ingest_many(self, records):
        applied = 0
        for record in records:
            if self.ingest(record):
                applied += 1
        return applied

    def barrier(self):
        """Propagate the global watermark to every block (so blocks that
        saw no recent records still close their windows) and mark the
        synced frontier the reducer may memoize behind."""
        if self._pool is not None or self._max_t is None:
            return
        for engine in self.blocks:
            engine.advance_watermark(self._max_t)
        synced = self._max_t - self.skew
        if synced != self._synced_watermark:
            self._synced_watermark = synced
            self.generation += 1

    # -- ingest (fork mode) ------------------------------------------------

    def ingest_step(self, batch):
        """Drive one fork-mode round of up to ``batch`` records per
        worker; returns True when the replay is exhausted."""
        if self._pool is None:
            raise RuntimeError("ingest_step is fork-mode only; use ingest()")
        if self._done:
            return True
        sync_t = self._max_t
        target = self.records_seen + int(batch)
        acks = self._pool.call_all("advance", target, sync_t, self._pending_drops)
        self._pending_drops = {}
        pos = max(ack["pos"] for ack in acks)
        for ack in acks:
            t = ack["max_t"]
            if t is not None and (self._max_t is None or t > self._max_t):
                self._max_t = t
        advanced = pos - self.records_seen
        self.records_seen = pos
        if sync_t is not None:
            synced = sync_t - self.skew
            if self._synced_watermark is None or synced > self._synced_watermark:
                self._synced_watermark = synced
                self.generation += 1
        if advanced:
            self.generation += advanced
        if all(ack["done"] for ack in acks):
            self._done = True
            return True
        return False

    # -- lifecycle ----------------------------------------------------------

    def close(self):
        """End of stream: close every block; the next reduction closes
        the merged windows exactly as the single engine's close would."""
        if self._closed:
            return
        if self._pool is not None:
            self._pool.call_all("close")
        else:
            for engine in self.blocks:
                if self._max_t is not None:
                    engine.advance_watermark(self._max_t)
                engine.close()
        self._closed = True
        self.generation += 1

    def shutdown(self):
        """Tear the fork pool down (bounded, loud); queries must reduce
        before this — afterwards only cached reductions answer."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    # -- reduction -----------------------------------------------------------

    def _exports(self):
        skip = {kind: set(memo) for kind, memo in self._memo.items() if memo}
        if self._pool is not None:
            merged = {}
            for worker_map in self._pool.call_all("export", skip):
                merged.update(worker_map)
            return [merged[block] for block in sorted(merged)]
        return [engine.export_state(skip) for engine in self.blocks]

    def _note_drop(self, kind, index):
        if self._pool is not None:
            self._pending_drops.setdefault(kind, []).append(index)
        elif self.blocks is not None:
            for engine in self.blocks:
                engine.drop_closed_states(kind, (index,))

    def _reduce(self):
        """Merge the sixteen block states into one read-only engine."""
        exports = self._exports()
        engine = StreamEngine(asn_of=self._asn_of, onp_ip=self._onp_ip, **self._conf)
        engine.records_seen = sum(e["records_seen"] for e in exports)
        engine.unknown_kinds = sum(e["unknown_kinds"] for e in exports)
        max_ts = [e["max_event_t"] for e in exports if e["max_event_t"] is not None]
        engine.max_event_t = max(max_ts) if max_ts else None
        for key in engine.totals:
            engine.totals[key] = sum(e["totals"][key] for e in exports)
        watermark = engine.watermark
        synced = self._synced_watermark
        # Start from the memoized base and replay the remaining
        # close-time folds in window order: the merged fold sequence is
        # exactly the single engine's.
        sketches = {
            name: {"cm": pair["cm"].copy(), "topk": pair["topk"].copy()}
            for name, pair in self._base_sketches.items()
        }
        global_stats = dict(self._base_stats)
        engine.isp_bytes_closed = self._base_isp_bytes
        for kind in _KINDS:
            window_set = engine.windows[kind]
            counters = [e["kinds"][kind] for e in exports]
            window_set.total = sum(c["total"] for c in counters)
            window_set.applied = sum(c["applied"] for c in counters)
            window_set.late = sum(c["late"] for c in counters)
            window_set.duplicate = sum(c["duplicate"] for c in counters)
            late_uids = []
            for c in counters:
                late_uids.extend(c["late_uids"])
            window_set.late_uids = late_uids[: WindowSet.LATE_UID_KEEP]
            memo = self._memo[kind]
            window_set.closed.update(memo)
            per_index = {}
            for c in counters:
                for index, part in c["states"].items():
                    per_index.setdefault(index, []).append(part)
            merge = _MERGERS[kind]
            for index in sorted(per_index):
                state, records = merge(per_index[index])
                lo, hi = window_set.windows.bounds(index)
                if watermark is not None and hi <= watermark:
                    if kind == "capture":
                        _add_stats(global_stats, state["stats"])
                        _fold_capture_aggregates(sketches, state)
                    elif kind == "isp":
                        engine.isp_bytes_closed += math.fsum(
                            state["victims"].values()
                        )
                        _fold_isp_aggregates(sketches, state)
                    summary = window_set._finalize(index, lo, hi, state, records)
                    window_set.closed[index] = summary
                    if synced is not None and hi <= synced:
                        # Every block is past this window: the merged
                        # summary is immutable.  Memoize it, move its
                        # folds into the persistent base, free the
                        # per-block states.
                        memo[index] = summary
                        if kind == "capture":
                            _add_stats(self._base_stats, state["stats"])
                            _fold_capture_aggregates(self._base_sketches, state)
                        elif kind == "isp":
                            self._base_isp_bytes += math.fsum(
                                state["victims"].values()
                            )
                            _fold_isp_aggregates(self._base_sketches, state)
                        self._note_drop(kind, index)
                else:
                    window = _OpenWindow(state)
                    window.records = records
                    window_set.open[index] = window
        engine.global_stats = global_stats
        engine.sketches = sketches
        if self._closed:
            # Close the merged leftovers through the engine's own
            # close-time hooks — the same folds, continuing in window
            # order.
            engine.close()
        return engine

    def merged(self):
        """The reduced engine for the current generation (cached until
        the next applied record / barrier / close)."""
        cached = self._merged_cache
        if cached is not None and cached[0] == self.generation:
            return cached[1]
        engine = self._reduce()
        self._merged_cache = (self.generation, engine)
        return engine

    # -- the engine surface (delegated to the reduction) --------------------

    @property
    def max_event_t(self):
        return self._max_t

    @property
    def watermark(self):
        if self._max_t is None:
            return None
        return self._max_t - self.skew

    @property
    def balanced(self):
        return self.merged().balanced

    def query(self, name, **params):
        return self.merged().query(name, **params)

    def query_parse_stats(self):
        return self.merged().query_parse_stats()

    def query_ingest(self):
        return self.merged().query_ingest()

    def snapshot(self):
        return self.merged().snapshot()
