"""The incremental engine: windowed aggregates + sketches over a stream.

:class:`StreamEngine` consumes :class:`~repro.stream.replay.StreamRecord`
values one at a time and maintains, simultaneously:

* **per-window exact state** — one :class:`~repro.stream.windows.WindowSet`
  per record kind (weekly capture windows aligned to the first sweep,
  daily windows for the darknet / ISP / Arbor flows), finalized into small
  summary dicts once the watermark passes;
* **global sketches** — count-min plus space-saving top-K over victim
  packets (by IP and by origin AS), amplifier entry counts, and Merit
  victim bytes, so "top victims since the campaign started" is answerable
  from a few kilobytes at any point of the stream;
* **global exact counters** — totals kept redundantly with the window
  ledgers so a reader can check ``sum(windows) == global`` inside a single
  snapshot (the no-torn-reads contract the service tests assert).

Capture decode path
-------------------
Mode-7 captures are *buffered* per open window and decoded in columnar
micro-batches through the same vectorized header-validation + block-decode
kernel the batch corpus uses (:func:`~repro.analysis.event_columns
.decode_capture_batch`); captures failing the vectorized checks fall back
— whole — to :func:`~repro.analysis.monlist_parse.reconstruct_table_lenient`
exactly as the object path does, so ``ParseStats`` advance counter for
counter on clean and fault-injected streams alike.  Buffers are flushed
before any read and before their window closes, and every per-window
quantity is an order-free aggregate (sets, sums, per-key totals), so
flush timing is unobservable: answers depend only on the records applied.

Sketch updates are deferred to window close: each open window accumulates
exact per-key totals (victim packets by IP, by origin AS, amplifier entry
counts, ISP victim bytes) and folds them into the global sketches in
sorted-key order when the window closes.  Reads merge the still-open
windows' exact aggregates on top (:meth:`StreamEngine.sketches_view`), so
mid-window answers lose nothing — but the sketch add *sequence* becomes a
deterministic function of the applied records alone, independent of when
queries arrive and of how the stream is sharded.  That is the property
the sharded ingest mode's answers-identical-at-any-``--shards`` contract
rests on.

The streaming path deliberately does not advance the batch parse-once
ledger — replay is a re-read of the measurement layer, and the engine's
own ingest accounting (``total == applied + late + duplicate`` per kind)
is the discipline that replaces it.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.analysis.monlist_parse import ParseStats, reconstruct_table_fast
from repro.analysis.victimology import (
    _MAX_INTERARRIVAL,
    _MIN_PACKETS,
    CLASS_NON_VICTIM,
    CLASS_SCANNER,
    classify_entry,
)
from repro.stream.sketches import CountMinSketch, SpaceSavingTopK
from repro.stream.windows import WindowSet
from repro.util.simtime import DAY, HOUR, WEEK
from repro.util.stats import percentile

__all__ = ["StreamEngine", "QUERY_NAMES"]

_STATS_FIELDS = tuple(f.name for f in dataclasses.fields(ParseStats))

#: Query names the engine (and therefore the service) answers.
QUERY_NAMES = (
    "amplifiers",
    "victims",
    "top_victims",
    "top_amplifiers",
    "top_ases",
    "top_isp_victims",
    "scanners",
    "traffic",
    "parse_stats",
    "ingest",
)

#: Sketch names fed by capture windows vs ISP windows; folds happen per
#: closed window in ascending index order, keys sorted within a window.
_CAPTURE_SKETCHES = (
    ("victim_packets", "victim_packets_by_ip"),
    ("as_packets", "as_packets"),
    ("amplifier_entries", "amp_entries"),
)

#: Per-family view sources: which open windows feed which sketch pair
#: (order fixed — it is also the canonical family enumeration).
_VIEW_SOURCES = {
    "victim_packets": ("capture", "victim_packets_by_ip"),
    "as_packets": ("capture", "as_packets"),
    "amplifier_entries": ("capture", "amp_entries"),
    "isp_victim_bytes": ("isp", "victims"),
}

#: Queries whose answer is a pure function of one source's windows (the
#: sketch-backed tops carry no watermark or global counters), keyed by
#: that source for :meth:`StreamEngine.query_version`.
_QUERY_VERSION_SOURCES = {
    "top_victims": "capture",
    "top_amplifiers": "capture",
    "top_ases": "capture",
    "top_isp_victims": "isp",
}


def _stats_dict(stats):
    return {name: getattr(stats, name) for name in _STATS_FIELDS}


def _add_stats(into, stats):
    for name in _STATS_FIELDS:
        into[name] += getattr(stats, name)


def _fold_totals(pair, totals):
    """Add one window's exact per-key totals into one sketch pair, keys
    in sorted order (the deterministic fold sequence the sharded
    reducer replays)."""
    keys = sorted(totals)
    weights = [totals[key] for key in keys]
    pair["cm"].add_many(keys, weights)
    pair["topk"].add_many(keys, weights)


def _fold_capture_aggregates(sketches, state):
    """Add one capture window's exact per-key totals into the sketches."""
    for sketch_name, state_key in _CAPTURE_SKETCHES:
        totals = state[state_key]
        if totals:
            _fold_totals(sketches[sketch_name], totals)


def _fold_isp_aggregates(sketches, state):
    """Add one ISP window's exact per-victim byte totals into the sketches."""
    victims = state["victims"]
    if victims:
        _fold_totals(sketches["isp_victim_bytes"], victims)


def _new_sketches(topk_capacity, cm_epsilon, cm_delta):
    """A fresh bank of the engine's four sketch pairs (shared with the
    sharded reducer, which rebuilds the fold sequence from window state)."""
    return {
        name: {
            "cm": CountMinSketch(cm_epsilon, cm_delta),
            "topk": SpaceSavingTopK(topk_capacity),
        }
        for name in (
            "victim_packets",
            "as_packets",
            "amplifier_entries",
            "isp_victim_bytes",
        )
    }


class StreamEngine:
    """Windowed, sketch-backed aggregation over one merged record stream."""

    def __init__(
        self,
        capture_origin=0.0,
        capture_width=float(WEEK),
        skew=0.0,
        asn_of=None,
        onp_ip=None,
        topk_capacity=64,
        cm_epsilon=0.005,
        cm_delta=0.01,
        keep_state=False,
        fold_on_close=True,
    ):
        if skew < 0:
            raise ValueError("skew must be non-negative")
        self.skew = float(skew)
        # Sharded block engines set fold_on_close=False: the query-time
        # reducer replays the close-time folds itself from the retained
        # window states (in global window order), so per-block folds
        # would be dead work — and folding per block would change the
        # sketch add sequence away from the single engine's.
        self.fold_on_close = bool(fold_on_close)
        self.asn_of = asn_of
        self.onp_ip = onp_ip
        self.max_event_t = None
        self.records_seen = 0
        self.unknown_kinds = 0
        #: Monotone change counter: bumps on every applied-or-not record
        #: and on close, so caches (service response cache, sketch view)
        #: can key on "has anything changed since I computed this".
        self.generation = 0
        self.config = {
            "capture_origin": float(capture_origin),
            "capture_width": float(capture_width),
            "skew": self.skew,
            "topk_capacity": int(topk_capacity),
            "cm_epsilon": float(cm_epsilon),
            "cm_delta": float(cm_delta),
        }

        self.windows = {
            "sweep": WindowSet(
                capture_width,
                origin=capture_origin,
                state_factory=self._new_sweep_state,
                keep_state=keep_state,
            ),
            "capture": WindowSet(
                capture_width,
                origin=capture_origin,
                state_factory=self._new_capture_state,
                finalize=self._finalize_capture,
                on_close=self._close_capture_window,
                keep_state=keep_state,
            ),
            "darknet": WindowSet(
                float(DAY),
                state_factory=set,
                finalize=self._finalize_darknet,
                keep_state=keep_state,
            ),
            "isp": WindowSet(
                float(DAY),
                state_factory=self._new_isp_state,
                finalize=self._finalize_isp,
                on_close=self._close_isp_window,
                keep_state=keep_state,
            ),
            "arbor": WindowSet(
                float(DAY),
                state_factory=self._new_arbor_state,
                finalize=self._finalize_arbor,
                keep_state=keep_state,
            ),
        }
        self._apply = {
            "sweep": self._apply_sweep,
            "darknet": self._apply_darknet,
            "isp": self._apply_isp,
            "arbor": self._apply_arbor,
        }

        self.sketches = _new_sketches(topk_capacity, cm_epsilon, cm_delta)

        # Stream-global exact counters, redundant with the window ledgers
        # on purpose: every snapshot can be cross-checked internally.
        self.global_stats = {name: 0 for name in _STATS_FIELDS}
        self.totals = {
            "captures": 0,
            "tables": 0,
            "entries": 0,
            "victim_pairs": 0,
            "victim_packets": 0,
            "scanner_entries": 0,
            "non_victim_entries": 0,
            "darknet_memberships": 0,
            "isp_cells": 0,
            "arbor_days": 0,
            "arbor_gap_days": 0,
        }
        # The global ISP byte total is *not* a per-record running float:
        # it accumulates one exactly-rounded math.fsum per window at
        # close (ascending window order), and reads add the open
        # windows' fsums on top.  fsum is order-independent, so the
        # sharded reduction reproduces the identical float by replaying
        # the same per-window folds — byte-identical answers at any
        # shard count, where a running += would drift by an ulp.
        self.isp_bytes_closed = 0.0

        # Capture micro-batch machinery: window indices with undedcoded
        # buffered captures, the watermark the windows were last advanced
        # to (skip redundant sweeps), per-IP ASN memo, sketch-view cache.
        self._dirty = set()
        self._advanced_to = None
        self._asn_cache = {}
        # Per-family sketch-view cache, keyed on the *source* mutation
        # counters below rather than the global generation: a darknet-
        # only batch leaves every capture/ISP aggregate untouched, so
        # top-victims answers between capture bursts reuse the fold.
        self._view_cache = None
        self._cap_mut = 0
        self._isp_mut = 0

    @classmethod
    def for_world(cls, world, plan=None, **kwargs):
        """An engine configured for a world's replay stream."""
        from repro.attack.scanner import ONP_PROBER_IP
        from repro.stream.replay import replay_plan

        plan = plan or replay_plan(world)
        kwargs.setdefault("asn_of", world.table.asn_of)
        kwargs.setdefault("onp_ip", ONP_PROBER_IP)
        return cls(
            capture_origin=plan["capture_origin"],
            capture_width=plan["capture_width"],
            **kwargs,
        )

    # -- per-kind window state ------------------------------------------------

    @staticmethod
    def _new_sweep_state():
        return {"sweeps": 0, "outages": 0, "coverage": [], "n_captures": 0}

    @staticmethod
    def _new_capture_state():
        return {
            "stats": ParseStats(),
            "amplifiers": set(),
            "victims": set(),
            "victim_pairs": 0,
            "victim_packets": 0,
            "scanner_entries": 0,
            "non_victim_entries": 0,
            "max_last_seen": [],
            "victim_packets_by_ip": {},
            "as_packets": {},
            "amp_entries": {},
            "pending": [],
        }

    @staticmethod
    def _new_isp_state():
        return {"victims": {}, "cells": 0}

    @staticmethod
    def _new_arbor_state():
        return {"total_bps": None, "ntp_bps": None, "dns_bps": None, "gap": False}

    # -- appliers -------------------------------------------------------------

    def _apply_sweep(self, state, payload):
        state["sweeps"] += 1
        state["outages"] += 1 if payload["outage"] else 0
        state["coverage"].append(payload["coverage"])
        state["n_captures"] += payload["n_captures"]

    def _apply_darknet(self, state, scanner_ip):
        state.add(scanner_ip)
        self.totals["darknet_memberships"] += 1

    def _apply_isp(self, state, payload):
        ip, volume = payload
        state["victims"][ip] = state["victims"].get(ip, 0.0) + volume
        state["cells"] += 1
        self.totals["isp_cells"] += 1
        self._isp_mut += 1

    def _apply_arbor(self, state, payload):
        if payload is None:
            state["gap"] = True
            self.totals["arbor_gap_days"] += 1
            return
        state["total_bps"], state["ntp_bps"], state["dns_bps"] = payload
        self.totals["arbor_days"] += 1

    # -- capture micro-batch decode -------------------------------------------

    def _flush_capture_window(self, index):
        window = self.windows["capture"].open.get(index)
        if window is None:
            return
        pending = window.state["pending"]
        if pending:
            window.state["pending"] = []
            self._decode_pending(window.state, pending)

    def flush(self):
        """Decode every buffered capture; answers never see a buffer."""
        if self._dirty:
            for index in sorted(self._dirty):
                self._flush_capture_window(index)
            self._dirty.clear()

    def _decode_pending(self, state, pending):
        from repro.analysis.event_columns import decode_capture_batch

        self.totals["captures"] += len(pending)
        groups = []
        by_store = {}
        loners = []
        for capture in pending:
            store = getattr(capture, "_store", None)
            pos = getattr(capture, "_index", None)
            if store is not None and pos is not None:
                group = by_store.get(id(store))
                if group is None:
                    group = []
                    by_store[id(store)] = group
                    groups.append((store, group))
                group.append(pos)
            else:
                loners.append(capture)
        for store, positions in groups:
            batch = decode_capture_batch(store, positions, state["stats"])
            self._apply_capture_batch(state, batch)
        for capture in loners:
            self._apply_capture_object(state, capture)

    def _apply_capture_batch(self, state, batch):
        """Fold one decoded columnar batch into the window's aggregates.

        Every update is order-free (set unions, per-key sums, a multiset
        for the percentile), so batching granularity cannot change any
        answer; classification masks replicate the victimology columnar
        kernel — exact float64 operands, hence bit-identical to
        :func:`classify_entry` per entry.
        """
        amps = batch.amplifier.tolist()
        n_tbl = len(amps)
        if not n_tbl:
            return
        self.totals["tables"] += n_tbl
        state["amplifiers"].update(amps)
        counts_tbl = batch.entry_counts
        amp_totals = state["amp_entries"]
        for amp, n in zip(amps, counts_tbl.tolist()):
            if n:
                amp_totals[amp] = amp_totals.get(amp, 0) + n
        entries = batch.entries
        n_entries = len(entries)
        if not n_entries:
            return
        self.totals["entries"] += n_entries

        last = entries["last"].astype(np.int64)
        nonzero = counts_tbl > 0
        if nonzero.any():
            seg_starts = batch.entry_start[:-1][nonzero]
            state["max_last_seen"].extend(
                np.maximum.reduceat(last, seg_starts).tolist()
            )

        addr = entries["addr"].astype(np.int64)
        count = entries["count"].astype(np.int64)
        first = entries["first"].astype(np.int64)
        mode = entries["mode"].astype(np.int64)
        keep = np.ones(n_entries, dtype=bool) if self.onp_ip is None else addr != self.onp_ip
        non_victim = keep & (mode < 6)
        avg = np.zeros(n_entries, dtype=np.float64)
        multi = count > 1
        avg[multi] = (first[multi] - last[multi]).astype(np.float64) / (
            count[multi].astype(np.float64) - 1.0
        )
        victim = keep & (mode >= 6) & (count >= _MIN_PACKETS) & (avg <= _MAX_INTERARRIVAL)
        n_nv = int(non_victim.sum())
        n_vic = int(victim.sum())
        n_scan = int(keep.sum()) - n_nv - n_vic
        state["non_victim_entries"] += n_nv
        self.totals["non_victim_entries"] += n_nv
        state["scanner_entries"] += n_scan
        self.totals["scanner_entries"] += n_scan
        if not n_vic:
            return
        state["victim_pairs"] += n_vic
        self.totals["victim_pairs"] += n_vic
        vaddr = addr[victim]
        vcount = count[victim]
        packets = int(vcount.sum())
        state["victim_packets"] += packets
        self.totals["victim_packets"] += packets
        uniq, inverse = np.unique(vaddr, return_inverse=True)
        # float64 bincount is exact here: per-window per-IP sums stay far
        # below 2**53.
        sums = np.bincount(inverse, weights=vcount.astype(np.float64))
        per_ip = state["victim_packets_by_ip"]
        keys = uniq.tolist()
        values = sums.astype(np.int64).tolist()
        for ip, total in zip(keys, values):
            per_ip[ip] = per_ip.get(ip, 0) + total
        state["victims"].update(keys)
        if self.asn_of is not None:
            per_as = state["as_packets"]
            cache = self._asn_cache
            for ip, total in zip(keys, values):
                asn = cache.get(ip, -1)
                if asn == -1:
                    asn = self.asn_of(ip)
                    cache[ip] = asn
                if asn is not None:
                    per_as[asn] = per_as.get(asn, 0) + total

    def _apply_capture_object(self, state, capture):
        """Per-capture object fallback for captures without a packed store
        (synthetic test samples); same aggregates, scalar loop."""
        table = reconstruct_table_fast(capture, state["stats"])
        if table is None:
            return
        self.totals["tables"] += 1
        amp = table.amplifier_ip
        state["amplifiers"].add(amp)
        entries = table.entries
        if entries:
            state["amp_entries"][amp] = state["amp_entries"].get(amp, 0) + len(entries)
        largest = 0
        for entry in entries:
            self.totals["entries"] += 1
            if entry.last_int > largest:
                largest = entry.last_int
            if self.onp_ip is not None and entry.addr == self.onp_ip:
                continue
            kind = classify_entry(entry)
            if kind == CLASS_NON_VICTIM:
                state["non_victim_entries"] += 1
                self.totals["non_victim_entries"] += 1
            elif kind == CLASS_SCANNER:
                state["scanner_entries"] += 1
                self.totals["scanner_entries"] += 1
            else:
                state["victim_pairs"] += 1
                state["victims"].add(entry.addr)
                state["victim_packets"] += entry.count
                self.totals["victim_pairs"] += 1
                self.totals["victim_packets"] += entry.count
                per_ip = state["victim_packets_by_ip"]
                per_ip[entry.addr] = per_ip.get(entry.addr, 0) + entry.count
                if self.asn_of is not None:
                    asn = self._asn_cache.get(entry.addr, -1)
                    if asn == -1:
                        asn = self.asn_of(entry.addr)
                        self._asn_cache[entry.addr] = asn
                    if asn is not None:
                        per_as = state["as_packets"]
                        per_as[asn] = per_as.get(asn, 0) + entry.count
        if entries:
            state["max_last_seen"].append(largest)

    # -- finalizers -----------------------------------------------------------

    def _close_capture_window(self, state):
        # Runs exactly once per window, at close: decode any buffered
        # captures, fold the window's ParseStats into the stream-global
        # counters, fold its per-key aggregates into the sketches.  Open
        # windows are folded non-destructively at read time instead.
        pending = state["pending"]
        if pending:
            state["pending"] = []
            self._decode_pending(state, pending)
        if self.fold_on_close:
            _add_stats(self.global_stats, state["stats"])
            _fold_capture_aggregates(self.sketches, state)
        self._cap_mut += 1

    def _close_isp_window(self, state):
        self.isp_bytes_closed += math.fsum(state["victims"].values())
        if self.fold_on_close:
            _fold_isp_aggregates(self.sketches, state)
        self._isp_mut += 1

    def _finalize_capture(self, index, lo, hi, state, records):
        mls = state["max_last_seen"]
        return {
            "captures": records,
            "amplifiers": len(state["amplifiers"]),
            "victim_pairs": state["victim_pairs"],
            "unique_victims": len(state["victims"]),
            "victim_packets": state["victim_packets"],
            "scanner_entries": state["scanner_entries"],
            "non_victim_entries": state["non_victim_entries"],
            "median_view_hours": percentile(mls, 50) / HOUR if mls else 0.0,
            "stats": _stats_dict(state["stats"]),
        }

    @staticmethod
    def _finalize_darknet(index, lo, hi, state, records):
        return {"scanners": len(state)}

    @staticmethod
    def _finalize_isp(index, lo, hi, state, records):
        return {
            "cells": state["cells"],
            "victims": len(state["victims"]),
            # Exactly-rounded, hence independent of dict insertion
            # order — merged per-block states summarize identically.
            "bytes": math.fsum(state["victims"].values()),
        }

    @staticmethod
    def _finalize_arbor(index, lo, hi, state, records):
        total, ntp, dns = state["total_bps"], state["ntp_bps"], state["dns_bps"]
        if state["gap"] and total is None:
            return {"gap": True, "ntp_frac": None, "dns_frac": None}
        if not total:
            return {"gap": False, "ntp_frac": 0.0, "dns_frac": 0.0}
        return {"gap": False, "ntp_frac": ntp / total, "dns_frac": dns / total}

    # -- ingest ---------------------------------------------------------------

    @property
    def watermark(self):
        """Latest event time minus the tolerated skew (None before any
        record)."""
        if self.max_event_t is None:
            return None
        return self.max_event_t - self.skew

    def _advance_windows(self, watermark):
        """Close every window the watermark has passed (buffers flush in
        the capture on_close hook before finalize reads the state)."""
        self._advanced_to = watermark
        for ws in self.windows.values():
            ws.advance(watermark)

    def ingest(self, record):
        """Apply one record; returns True iff it landed in an open window."""
        self.records_seen += 1
        self.generation += 1
        t, kind, uid, payload = record
        window_set = self.windows.get(kind)
        if window_set is None:
            self.unknown_kinds += 1
            return False
        max_t = self.max_event_t
        if max_t is None or t > max_t:
            self.max_event_t = max_t = t
        watermark = max_t - self.skew
        index = window_set.windows.index_of(t)
        state = window_set.offer_at(index, uid, watermark)
        applied = state is not None
        if applied:
            if kind == "capture":
                state["pending"].append(payload)
                self._dirty.add(index)
                self._cap_mut += 1
            else:
                self._apply[kind](state, payload)
        if watermark != self._advanced_to:
            self._advance_windows(watermark)
        return applied

    def ingest_tagged(self, record, pre_max_t):
        """Ingest one record of a partitioned substream.

        ``pre_max_t`` is the maximum event time seen *strictly before*
        this record in the whole (unpartitioned) stream.  Advancing the
        local watermark to it first reproduces, pointwise, the window
        closures the single engine performed before offering this record
        — the keystone of the per-block ledgers summing to the
        single-engine ledger (see :mod:`repro.stream.partition`).
        """
        if pre_max_t is not None and (
            self.max_event_t is None or pre_max_t > self.max_event_t
        ):
            self.max_event_t = pre_max_t
            watermark = self.watermark
            if watermark != self._advanced_to:
                self.generation += 1
                self._advance_windows(watermark)
        return self.ingest(record)

    def advance_watermark(self, t):
        """Barrier sync: act as if an event at time ``t`` was observed
        (without any record), closing every window it passes."""
        if t is None:
            return
        if self.max_event_t is None or t > self.max_event_t:
            self.max_event_t = t
            watermark = self.watermark
            if watermark != self._advanced_to:
                self.generation += 1
                self._advance_windows(watermark)

    def ingest_many(self, records):
        """Drive a whole iterable through the ingest discipline in one
        hoisted loop; returns the number applied.

        Accounting-identical to per-record :meth:`ingest` (the property
        tests assert it on adversarial streams): same ledger decisions,
        same window closes, same aggregates.  Two layers of hoisting:

        * **Run batching** — a maximal run of same-kind darknet or
          capture records that stays time-sorted inside one already-open
          window with no duplicate uids is applied with bulk set/list
          operations.  Such a run is the sorted-replay common case; the
          per-record discipline cannot observe the difference because
          every run record lands in that one open window (its end is
          past every run timestamp, so nothing in the run is late and
          the window cannot close mid-run), the window aggregates are
          order-free, and deferring the watermark sweep to the run's
          end closes exactly the same windows — cross-kind close order
          is unobservable because each kind folds into disjoint
          accumulators, while same-kind closes stay in ascending index
          order either way.

        * **Per-record fallback** — anything irregular (out-of-order
          timestamps, duplicates, window boundaries, sweep/isp/arbor
          records, unknown kinds) drops to the inlined equivalent of
          :meth:`ingest` for that record alone, window-index boundary
          nudge included, so fault-injected streams take the exact
          per-record ledger path.
        """
        if not isinstance(records, list):
            records = list(records)
        windows = self.windows
        skew = self.skew
        apply = self._apply
        dirty = self._dirty
        totals = self.totals
        floor = math.floor
        max_t = self.max_event_t
        advanced_to = self._advanced_to
        # kind -> (origin, width, window set, bound offer_at).
        plans = {
            kind: (ws.windows.origin, ws.windows.width, ws, ws.offer_at)
            for kind, ws in windows.items()
        }
        seen = applied = unknown = 0
        i, n = 0, len(records)
        while i < n:
            record = records[i]
            t, kind, uid, payload = record
            plan = plans.get(kind)
            if plan is None:
                unknown += 1
                seen += 1
                i += 1
                continue
            origin, width, ws, offer_at = plan
            index = floor((t - origin) / width)
            if t < origin + index * width:
                index -= 1
            elif t >= origin + (index + 1) * width:
                index += 1
            # -- bulk path: sorted same-kind run inside one open window --
            if (kind == "darknet" or kind == "capture") and (
                max_t is None or t >= max_t
            ):
                window = ws.open.get(index)
                if window is not None:
                    hi = origin + (index + 1) * width
                    j = i + 1
                    t_end = t
                    while j < n:
                        r = records[j]
                        if r[1] != kind:
                            break
                        rt = r[0]
                        if rt < t_end or rt >= hi:
                            break
                        t_end = rt
                        j += 1
                    if j - i >= 4:
                        run = records[i:j]
                        uids = {r[2] for r in run}
                        wseen = window.seen
                        # A redelivery inside the run itself (uids
                        # collapse) must take the per-record duplicate
                        # path, not ride the bulk apply.
                        if len(uids) == j - i and wseen.isdisjoint(uids):
                            count = j - i
                            wseen.update(uids)
                            window.records += count
                            ws.total += count
                            ws.applied += count
                            applied += count
                            seen += count
                            if kind == "darknet":
                                window.state.update(r[3] for r in run)
                                totals["darknet_memberships"] += count
                            else:
                                window.state["pending"].extend(r[3] for r in run)
                                dirty.add(index)
                                self._cap_mut += 1
                            max_t = t_end
                            watermark = t_end - skew
                            if watermark != advanced_to:
                                advanced_to = watermark
                                self.max_event_t = max_t
                                self._advance_windows(watermark)
                            i = j
                            continue
            # -- per-record fallback ------------------------------------
            seen += 1
            i += 1
            if max_t is None or t > max_t:
                max_t = t
            watermark = max_t - skew
            state = offer_at(index, uid, watermark)
            if state is not None:
                applied += 1
                if kind == "darknet":
                    state.add(payload)
                    totals["darknet_memberships"] += 1
                elif kind == "capture":
                    state["pending"].append(payload)
                    dirty.add(index)
                    self._cap_mut += 1
                else:
                    apply[kind](state, payload)
            if watermark != advanced_to:
                advanced_to = watermark
                self.max_event_t = max_t
                self._advance_windows(watermark)
        self.max_event_t = max_t
        self.records_seen += seen
        self.unknown_kinds += unknown
        self.generation += seen
        return applied

    def close(self):
        """End of stream: finalize every still-open window."""
        self.flush()
        self.generation += 1
        for ws in self.windows.values():
            ws.close_all()
        self._dirty.clear()

    # -- queries --------------------------------------------------------------

    def sketches_view(self, names=None):
        """Effective sketches: the closed-window folds plus every open
        window's exact aggregates, merged non-destructively.

        ``names`` restricts the answer to the listed families; each
        family's merged pair is built lazily and cached against its
        *source* mutation counter — capture applies/closes for the
        capture-fed families, ISP ones for the byte sketch — so a
        top-victims query between capture bursts reuses the fold even
        though darknet records keep the global generation moving, and it
        never pays the (much larger) amplifier-entries fold.  Per family
        the fold sequence — open windows ascending, keys sorted within a
        window — is exactly the one the eager whole-view fold produced,
        so answers are byte-identical however the families are
        materialized.
        """
        self.flush()
        cap_open = self.windows["capture"].open
        isp_open = self.windows["isp"].open
        if not cap_open and not isp_open:
            return self.sketches
        built = self._view_cache
        if built is None:
            built = self._view_cache = {}
        out = {}
        for name in names if names is not None else _VIEW_SOURCES:
            source, state_key = _VIEW_SOURCES[name]
            mut = self._cap_mut if source == "capture" else self._isp_mut
            cached = built.get(name)
            if cached is not None and cached[0] == mut:
                out[name] = cached[1]
                continue
            base = self.sketches[name]
            pair = {"cm": base["cm"].copy(), "topk": base["topk"].copy()}
            open_map = cap_open if source == "capture" else isp_open
            for index in sorted(open_map):
                totals = open_map[index].state[state_key]
                if totals:
                    _fold_totals(pair, totals)
            built[name] = (mut, pair)
            out[name] = pair
        return out

    def query_version(self, name):
        """A hashable token that changes whenever query ``name``'s answer
        can change.

        The sketch-backed top queries depend on exactly one source's
        windows, so they key on that source's mutation counter — batches
        of other kinds (most of a replay is darknet memberships) leave a
        cached response valid.  Everything else carries the watermark or
        global accounting and keys on the per-record generation.  Only
        meaningful on a single engine: the sharded front intentionally
        lacks this method because its merged engine is rebuilt per
        generation, which would restart the counters.
        """
        source = _QUERY_VERSION_SOURCES.get(name)
        if source == "capture":
            return ("c", self._cap_mut)
        if source == "isp":
            return ("i", self._isp_mut)
        return ("g", self.generation)

    def query(self, name, **params):
        """Dispatch one named query (the service's surface)."""
        if name == "amplifiers":
            return self._windows_query("capture")
        if name == "victims":
            return self._windows_query("capture")
        if name == "top_victims":
            return self._top_query("victim_packets", params)
        if name == "top_amplifiers":
            return self._top_query("amplifier_entries", params)
        if name == "top_ases":
            return self._top_query("as_packets", params)
        if name == "top_isp_victims":
            return self._top_query("isp_victim_bytes", params)
        if name == "scanners":
            return self._windows_query("darknet")
        if name == "traffic":
            return self._windows_query("arbor")
        if name == "parse_stats":
            return self.query_parse_stats()
        if name == "ingest":
            return self.query_ingest()
        raise KeyError(f"unknown query {name!r} (have: {', '.join(QUERY_NAMES)})")

    def _windows_query(self, kind):
        self.flush()
        rows = [
            {"window": index, "lo": lo, "hi": hi, "open": is_open, **summary}
            for index, lo, hi, summary, is_open in self.windows[kind].summaries()
        ]
        return {"kind": kind, "windows": rows, "watermark": self.watermark}

    def _top_query(self, sketch_name, params):
        n = params.get("n")
        n = int(n) if n is not None else 10
        if n < 1:
            raise ValueError("n must be >= 1")
        pair = self.sketches_view((sketch_name,))[sketch_name]
        top = pair["topk"].top(n)
        estimates = pair["cm"].estimate_many([key for key, _, _ in top])
        return {
            "sketch": sketch_name,
            "guarantee_threshold": pair["topk"].guarantee_threshold(),
            "cm_error_bound": pair["cm"].error_bound(),
            "entries": [
                {
                    "key": key,
                    "count": count,
                    "error": error,
                    "cm_estimate": estimate,
                }
                for (key, count, error), estimate in zip(top, estimates)
            ],
        }

    def query_parse_stats(self):
        """Stream-global ParseStats: closed windows' folded counters plus
        the still-open windows, read without closing them."""
        self.flush()
        out = dict(self.global_stats)
        for window in self.windows["capture"].open.values():
            _add_stats(out, window.state["stats"])
        return out

    def totals_view(self):
        """The global totals with the ISP byte sum assembled from its
        per-window fsums: closed-window accumulator plus the still-open
        windows, in ascending window order."""
        out = dict(self.totals)
        isp_bytes = self.isp_bytes_closed
        isp_open = self.windows["isp"].open
        for index in sorted(isp_open):
            isp_bytes += math.fsum(isp_open[index].state["victims"].values())
        out["isp_bytes"] = isp_bytes
        return out

    def query_ingest(self):
        self.flush()
        accounting = {kind: ws.accounting() for kind, ws in self.windows.items()}
        return {
            "records_seen": self.records_seen,
            "unknown_kinds": self.unknown_kinds,
            "watermark": self.watermark,
            "skew": self.skew,
            "balanced": self.balanced,
            "kinds": accounting,
            "totals": self.totals_view(),
        }

    @property
    def balanced(self):
        """Every record accounted: per-kind ledgers balance and their
        totals plus unknown-kind records cover everything seen."""
        per_kind = all(ws.balanced for ws in self.windows.values())
        covered = (
            sum(ws.total for ws in self.windows.values()) + self.unknown_kinds
        ) == self.records_seen
        return per_kind and covered

    def snapshot(self):
        """One internally consistent view of everything the engine knows.

        The redundant global counters ride along so a reader can assert
        ``sum over windows == global`` without a second request — the
        torn-read check the service tests run against concurrent
        ingestion.
        """
        self.flush()
        capture_windows = self._windows_query("capture")["windows"]
        return {
            "records_seen": self.records_seen,
            "watermark": self.watermark,
            "capture_windows": capture_windows,
            "windowed_victim_pairs": sum(
                w["victim_pairs"] for w in capture_windows
            ),
            "totals": self.totals_view(),
            "parse_stats": self.query_parse_stats(),
            "ingest": self.query_ingest(),
            "sketches": {
                name: {"cm": pair["cm"].as_dict(), "topk": pair["topk"].as_dict(10)}
                for name, pair in self.sketches_view().items()
            },
        }

    # -- sharded-reduction surface --------------------------------------------

    def export_state(self, skip_closed=None):
        """Everything the query-time reduction needs from one block.

        ``skip_closed`` maps kind -> index set the reducer has already
        memoized (their merged summaries are immutable), so those states
        are neither re-shipped nor re-merged.  Containers are returned by
        reference; the reducer's merge functions never mutate them, and
        the fork-pool transport pickles them into copies anyway.
        """
        self.flush()
        kinds = {}
        for kind, ws in self.windows.items():
            skip = skip_closed.get(kind) if skip_closed else None
            states = {}
            for index, window in ws.open.items():
                states[index] = ("open", window.state, window.records)
            for index, (state, records) in ws.closed_states.items():
                if skip and index in skip:
                    continue
                states[index] = ("closed", state, records)
            kinds[kind] = {
                "total": ws.total,
                "applied": ws.applied,
                "late": ws.late,
                "duplicate": ws.duplicate,
                "late_uids": list(ws.late_uids),
                "states": states,
            }
        return {
            "records_seen": self.records_seen,
            "unknown_kinds": self.unknown_kinds,
            "max_event_t": self.max_event_t,
            "global_stats": dict(self.global_stats),
            "totals": dict(self.totals),
            "kinds": kinds,
        }

    def drop_closed_states(self, kind, indices):
        """Free retained closed-window states the reducer has memoized."""
        closed_states = self.windows[kind].closed_states
        for index in indices:
            closed_states.pop(index, None)
