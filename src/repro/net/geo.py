"""GeoIP stand-in.

The paper uses GeoIP only to place amplifiers and victims in countries and
continents (victims "from 184 countries in six continents"; the nine mega
amplifiers "all located in Japan"; §6.1's per-continent remediation rates).
Our geo view simply resolves an IP through the synthetic address plan.
"""

from repro.net.asn import _COUNTRIES

__all__ = ["CONTINENT_OF", "GeoView"]

#: country code -> continent code, derived from the synthetic address plan.
CONTINENT_OF = {
    country: continent for continent, countries in _COUNTRIES.items() for country in countries
}


class GeoView:
    """Country/continent lookups for IPs via a routed-block table."""

    def __init__(self, table):
        self._table = table

    def country_of(self, ip):
        system = self._table.origin_as(ip)
        return system.country if system else None

    def continent_of(self, ip):
        system = self._table.origin_as(ip)
        return system.continent if system else None

    def countries_of(self, ips):
        """The set of countries covering a collection of IPs."""
        found = set()
        for ip in ips:
            country = self.country_of(ip)
            if country is not None:
                found.add(country)
        return found
