"""The global NTP host population.

One generator builds every pool the paper measures, at a configurable scale:

* **all NTP servers** (≈6M at full scale) — answer mode 3; most also answer
  the mode-6 ``version`` query (the ≈4.9M-peak pool of §3.3/Fig 10);
* **monlist amplifiers** (≈1.405M initially) — answer mode-7 monlist for one
  or both implementation codes (§3.1);
* **mega amplifiers** (≈10K returning >100KB; a handful returning
  gigabytes, all in Japanese networks, §3.4) — modeled with a loop factor
  that re-processes each query;
* churn: end-host amplifiers sit in DHCP pools and change address
  (13–35% of the pool is residential, §3.1), and a trickle of brand-new
  amplifiers appears every week, which is why 15 weekly scans saw 2.17M
  unique IPs against a 1.4M starting pool.

Hosts are lightweight records; their monlist tables are materialized by the
scenario layer only for hosts that ever answer a probe or relay an attack.
"""

import math
from dataclasses import dataclass, field

import numpy as np

from repro.net.asn import NetworkKind
from repro.ntp.constants import IMPL_XNTPD, IMPL_XNTPD_OLD
from repro.population.columns import (
    HOST_BLOCKS,
    MonlistColumns,
    balanced_split,
    host_record_batch,
)
from repro.population.osmodel import sample_system_attributes
from repro.util.simtime import DAY, HOUR, WEEK, date_to_sim

__all__ = [
    "NtpHost",
    "BackgroundClients",
    "PoolParams",
    "HostPool",
    "build_host_pool",
    "estimate_monlist_reply_bytes",
    "HOST_BLOCKS",
]


def estimate_monlist_reply_bytes(host, include_loop=True):
    """Approximate on-wire bytes one monlist query elicits from ``host``.

    Uses the host's steady-state table size (attackers size their query
    rates the same way — by observing the amplifier).  Exact per-probe reply
    sizes come from the materialized server; this estimate is for bulk
    traffic accounting, where the table's attack-time fluctuations wash out.

    ``include_loop=False`` gives the *table-only* size — what an attacker's
    list-building tooling records (mega amplifiers were "DDoS jackpot"
    lucky finds, §3.4, not something booter scanners ranked for).
    """
    import math

    entries = min(600, max(1, host.base_clients))
    packets = math.ceil(entries / 6)
    payload = packets * 8 + entries * 72
    once = payload + packets * 66
    if not include_loop:
        return once
    # Loop-pathology amplifiers multiply the reply, but what a victim
    # actually receives per query is bounded by the amplifier's uplink;
    # 15 MB per query matches §3.4's ">10,000 packets (at least 5 MB)"
    # giga-amplifier observations.
    return min(once * host.loop_factor, 15_000_000)

#: Mix of implementation codes among monlist amplifiers.  The ONP scans probe
#: only IMPL_XNTPD, so v1-only servers are invisible to them (the paper's
#: main acknowledged source of under-count; Kührer saw ~9% more).
_IMPL_MIX = [
    (frozenset({IMPL_XNTPD}), 0.60),
    (frozenset({IMPL_XNTPD, IMPL_XNTPD_OLD}), 0.30),
    (frozenset({IMPL_XNTPD_OLD}), 0.10),
]

#: Fraction of monlist amplifiers whose tables are primed/full (600 entries);
#: Fig 4a shows ~99% of amplifiers return less than a full table.
_FULL_TABLE_FRACTION = 0.012

#: Initial end-host share of the amplifier pool (Table 1, 2014-01-10).
_END_HOST_FRACTION = 0.185

#: Mean DHCP lease length for end-host amplifiers.
_LEASE_MEAN = 2.5 * WEEK

#: Weekly arrival rate of brand-new amplifiers, as a fraction of the
#: initial pool (sustains discovery of new IPs on every scan).
_ARRIVAL_WEEKLY_FRACTION = 0.006

#: AS kinds that host infrastructure (non-end-host) amplifiers, weighted.
_INFRA_KIND_WEIGHTS = [
    (NetworkKind.HOSTING, 0.30),
    (NetworkKind.TELECOM, 0.30),
    (NetworkKind.ENTERPRISE, 0.25),
    (NetworkKind.EDUCATION, 0.15),
]


#: Below this many clients the scalar ``state_at`` path beats NumPy (the
#: median amplifier has single-digit clients; the vectorized path pays ~30 µs
#: of fixed per-array overhead regardless of size).
_STATE_AT_SCALAR_MAX = 32


@dataclass
class BackgroundClients:
    """Numpy-backed static description of a host's legitimate clients.

    ``one_shot`` clients polled exactly once (at ``first_poll``); periodic
    clients poll every ``interval`` seconds from ``first_poll`` onward.
    """

    ips: np.ndarray
    ports: np.ndarray
    intervals: np.ndarray
    first_polls: np.ndarray
    one_shot: np.ndarray

    def __len__(self):
        return len(self.ips)

    def __getstate__(self):
        # The scalar-row cache is derived state; keep pickles (the world
        # cache) lean by dropping it.
        state = self.__dict__.copy()
        state.pop("_scalar_rows", None)
        return state

    def _rows(self):
        rows = self.__dict__.get("_scalar_rows")
        if rows is None:
            rows = list(
                zip(
                    self.ips.tolist(),
                    self.ports.tolist(),
                    self.intervals.tolist(),
                    self.first_polls.tolist(),
                    self.one_shot.tolist(),
                )
            )
            self._scalar_rows = rows
        return rows

    def state_at(self, now, since=None):
        """(ip, port, count, first_seen, last_seen) rows for clients with at
        least one poll in ``(since, now]`` (``since=None`` means "ever").

        ``since`` is used after a daemon restart: only polls after the
        flush may appear in the rebuilt table.
        """
        if len(self.ips) <= _STATE_AT_SCALAR_MAX:
            return self._state_at_scalar(now, since)
        active = self.first_polls <= now
        if not active.any():
            return []
        ips = self.ips[active]
        ports = self.ports[active]
        intervals = self.intervals[active]
        firsts = self.first_polls[active]
        ones = self.one_shot[active]
        total = np.where(ones, 1, 1 + np.floor((now - firsts) / intervals)).astype(np.int64)
        lasts = firsts + (total - 1) * intervals
        if since is None:
            counts = total
            first_seen = firsts
        else:
            # Polls strictly after `since`.
            before = np.where(
                ones,
                (firsts <= since).astype(np.int64),
                np.clip(1 + np.floor((since - firsts) / intervals), 0, None).astype(np.int64),
            )
            before = np.minimum(before, total)
            counts = total - before
            first_seen = firsts + before * intervals
        keep = (counts >= 1) & (lasts > (since if since is not None else -np.inf))
        if not keep.any():
            return []
        return list(
            zip(
                ips[keep].tolist(),
                ports[keep].tolist(),
                counts[keep].tolist(),
                first_seen[keep].tolist(),
                lasts[keep].tolist(),
            )
        )

    def _state_at_scalar(self, now, since):
        """Pure-Python :meth:`state_at` for small client sets.

        NumPy's per-array overhead dominates below a few dozen elements
        (the median host has ~6 clients).  Every arithmetic step mirrors
        the vectorized path operation-for-operation on float64 scalars, so
        the rows are bit-identical (``math.floor`` equals ``np.floor`` and
        Python int arithmetic is exact where int64 is).
        """
        out = []
        floor = math.floor
        for ip, port, interval, first, one in self._rows():
            if first > now:
                continue
            total = 1 if one else 1 + int(floor((now - first) / interval))
            last = first + (total - 1) * interval
            if since is None:
                count = total
                first_seen = first
            else:
                if one:
                    before = 1 if first <= since else 0
                else:
                    before = max(0, 1 + int(floor((since - first) / interval)))
                before = min(before, total)
                count = total - before
                first_seen = first + before * interval
                if last <= since:
                    continue
            if count >= 1:
                out.append((ip, port, count, first_seen, last))
        return out


@dataclass(slots=True)
class NtpHost:
    """One NTP server in the world model.

    ``slots=True`` matters at ``scale=1.0``: ~8.7M host records carry no
    per-instance ``__dict__``, cutting resident memory by roughly half.
    """

    ip: int
    asn: int
    continent: str
    country: str
    is_end_host: bool
    attrs: object  # SystemAttributes
    responds_version: bool
    monlist_amplifier: bool
    implementations: frozenset
    base_clients: int
    primed_full: bool
    loop_factor: int = 1
    is_mega: bool = False
    also_dns_resolver: bool = False
    restart_interval: float = None
    birth: float = 0.0
    death: float = None  # DHCP lease end (the host moves to a new IP)
    remediation_time: float = None  # monlist disabled from this time on
    version_off_time: float = None  # version responses disabled from here
    cluster_id: int = -1
    clients: BackgroundClients = field(default=None, repr=False)

    def exists_at(self, t):
        """Is this IP bound to the host at time ``t``?"""
        if t < self.birth:
            return False
        return self.death is None or t < self.death

    def monlist_active(self, t):
        """Does this host answer monlist (for its implementations) at ``t``?"""
        if not self.monlist_amplifier or not self.exists_at(t):
            return False
        return self.remediation_time is None or t < self.remediation_time

    def version_active(self, t):
        if not self.responds_version or not self.exists_at(t):
            return False
        return self.version_off_time is None or t < self.version_off_time

    def answers_implementation(self, implementation):
        return implementation in self.implementations


@dataclass(frozen=True)
class PoolParams:
    """Scale and calibration knobs for the host population.

    Full-scale counts mirror the paper; ``scale`` multiplies all of the
    *populations* (never protocol constants).  The handful of named giga
    amplifiers (§3.4's nine Japanese IPs) are absolute, not scaled.
    """

    scale: float = 0.01
    all_ntp_full: int = 6_000_000
    monlist_initial_full: int = 1_405_000
    version_responder_fraction: float = 0.85
    #: Monlist amplifiers respond to mode-6 less often than the general
    #: population (keeps Table 2's cisco-heavy "All NTP" column dominant
    #: even with DHCP-churn inflation of amplifier IPs).
    amplifier_version_fraction: float = 0.55
    mega_full: int = 10_000
    giga_count: int = 9
    dns_overlap_fraction: float = 0.092
    table_alpha: float = 0.9
    full_table_fraction: float = _FULL_TABLE_FRACTION
    end_host_fraction: float = _END_HOST_FRACTION
    lease_mean: float = _LEASE_MEAN
    arrival_weekly_fraction: float = _ARRIVAL_WEEKLY_FRACTION
    window_end: float = date_to_sim(2014, 6, 14)

    def __post_init__(self):
        if not 0 < self.scale <= 1:
            raise ValueError("scale must be in (0, 1]")

    @property
    def n_all_ntp(self):
        return max(50, int(self.all_ntp_full * self.scale))

    @property
    def n_monlist(self):
        return max(20, int(self.monlist_initial_full * self.scale))

    @property
    def n_mega(self):
        return max(3, int(self.mega_full * self.scale))


class _LivenessIndex:
    """Vectorized [birth, end) interval index over a host list.

    The liveness predicates (``monlist_active``/``version_active``/
    ``exists_at``) all reduce to ``birth <= t < end`` for a per-host
    effective end time, so one pair of NumPy arrays answers any "alive at
    t" query with two vectorized comparisons instead of a Python-level
    method call per host.  Results preserve the source list's order, so
    callers that index into the returned list with RNG draws see exactly
    the sequence the naive scan produced.

    The index is built lazily and rebuilt when the source list grows (the
    scenario layer plants local amplifiers after pool construction).
    Mutating liveness attributes of already-indexed hosts requires an
    explicit :meth:`invalidate`.
    """

    def __init__(self, hosts, end_times_of):
        self._hosts = hosts
        self._end_times_of = end_times_of
        self._births = None
        self._ends = None
        self._indexed = -1

    def invalidate(self):
        self._indexed = -1

    def _ensure(self):
        if self._indexed == len(self._hosts):
            return
        hosts = self._hosts
        self._births = np.array([h.birth for h in hosts], dtype=np.float64)
        self._ends = np.array([self._end_times_of(h) for h in hosts], dtype=np.float64)
        self._indexed = len(hosts)

    def alive(self, t, limit=None, window=None):
        """Hosts alive at ``t``, in source-list order.

        ``limit`` restricts the query to the first ``limit`` hosts of the
        source list (a partial sweep probes only a prefix of the target
        list) — identical to slicing the list first, without the slice.

        ``window`` is an optional ``(lo, hi)`` half-open range of source
        indices (a build block's slice); ``limit`` still applies as a
        *global* prefix, so the union over all block windows equals the
        unwindowed query exactly.
        """
        self._ensure()
        births, ends = self._births, self._ends
        hosts = self._hosts
        lo, hi = 0, len(hosts)
        if window is not None:
            lo, hi = window
        if limit is not None and limit < hi:
            hi = limit
        if hi <= lo:
            return []
        mask = (births[lo:hi] <= t) & (t < ends[lo:hi])
        return [hosts[lo + i] for i in np.flatnonzero(mask)]

    def count_alive(self, t):
        self._ensure()
        return int(((self._births <= t) & (t < self._ends)).sum())


def _monlist_end(host):
    end = np.inf if host.death is None else host.death
    if host.remediation_time is not None:
        end = min(end, host.remediation_time)
    return end


def _version_end(host):
    end = np.inf if host.death is None else host.death
    if host.version_off_time is not None:
        end = min(end, host.version_off_time)
    return end


def _exists_end(host):
    return np.inf if host.death is None else host.death


class HostPool:
    """The generated population, with time-sliced views over each pool.

    The pool also carries the *block structure* of its own construction:
    hosts are generated in :data:`HOST_BLOCKS` fixed blocks plus a tail
    block (giga amplifiers and scenario-planted hosts), and several
    downstream phases (the ONP sweep shards, per-block fingerprints)
    need each block's contiguous slice of the host/monlist/version
    lists.  Because the filtered views preserve host order, each block's
    monlist (and version) hosts are contiguous in the filtered lists,
    so the bounds are plain ``(lo, hi)`` pairs.
    """

    def __init__(self, hosts, params, block_lengths=None):
        self.hosts = hosts
        self.params = params
        self._monlist_hosts = [h for h in hosts if h.monlist_amplifier]
        self._version_hosts = [h for h in hosts if h.responds_version]
        self._monlist_index = _LivenessIndex(self._monlist_hosts, _monlist_end)
        self._version_index = _LivenessIndex(self._version_hosts, _version_end)
        self._exists_index = _LivenessIndex(self.hosts, _exists_end)
        if block_lengths is None:
            block_lengths = [len(hosts)]
        if sum(block_lengths) != len(hosts):
            raise ValueError("block lengths do not cover the host list")
        self._block_lengths = list(block_lengths)
        self._compute_block_bounds()
        self._monlist_columns = None

    def _compute_block_bounds(self):
        """One pass over the host list computing each block's slice of
        the host, monlist, and version lists."""
        self._host_bounds = []
        self._mon_bounds = []
        self._ver_bounds = []
        pos = mi = vi = 0
        for length in self._block_lengths:
            h0, m0, v0 = pos, mi, vi
            for host in self.hosts[pos : pos + length]:
                if host.monlist_amplifier:
                    mi += 1
                if host.responds_version:
                    vi += 1
            pos += length
            self._host_bounds.append((h0, pos))
            self._mon_bounds.append((m0, mi))
            self._ver_bounds.append((v0, vi))

    @property
    def n_blocks(self):
        return len(self._block_lengths)

    def monlist_block_bounds(self, block):
        return self._mon_bounds[block]

    def version_block_bounds(self, block):
        return self._ver_bounds[block]

    def extend(self, new_hosts):
        """Append scenario-planted hosts to the tail block, keeping the
        filtered views, block bounds, and liveness indexes coherent."""
        for host in new_hosts:
            self.hosts.append(host)
            if host.monlist_amplifier:
                self._monlist_hosts.append(host)
            if host.responds_version:
                self._version_hosts.append(host)
        self._block_lengths[-1] += len(new_hosts)
        self._compute_block_bounds()
        self._monlist_columns = None
        self.invalidate_liveness_index()

    def __len__(self):
        return len(self.hosts)

    @property
    def monlist_hosts(self):
        """Every host that was ever a monlist amplifier (any lease/IP)."""
        return self._monlist_hosts

    @property
    def version_hosts(self):
        return self._version_hosts

    def monlist_columns(self):
        """Memoized :class:`MonlistColumns` over ``monlist_hosts``
        (rebuilt if the list has grown since it was materialized)."""
        cols = self._monlist_columns
        if cols is None or cols.n_hosts != len(self._monlist_hosts):
            cols = MonlistColumns(self._monlist_hosts)
            self._monlist_columns = cols
        return cols

    def record_batch(self):
        """Big-endian ``HOST_DTYPE`` serialization of the whole pool."""
        return host_record_batch(self.hosts, _monlist_end, _version_end, _exists_end)

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_monlist_columns"] = None  # derived; keep cache pickles lean
        return state

    def invalidate_liveness_index(self):
        """Force index rebuilds after in-place edits to indexed hosts'
        birth/death/remediation/version-off attributes.  Appending hosts
        to the pool lists is detected automatically."""
        self._monlist_index.invalidate()
        self._version_index.invalidate()
        self._exists_index.invalidate()

    def monlist_alive(self, t, limit=None, window=None):
        return self._monlist_index.alive(t, limit=limit, window=window)

    def version_alive(self, t, limit=None, window=None):
        return self._version_index.alive(t, limit=limit, window=window)

    def mega_hosts(self):
        return [h for h in self.hosts if h.is_mega]

    def host_count_alive(self, t):
        return self._exists_index.count_alive(t)


def _sample_cluster_sizes(rng, total):
    """Cluster sizes for infrastructure amplifiers: mostly singletons plus a
    heavy tail of server farms managed (and later patched) together."""
    sizes = []
    placed = 0
    while placed < total:
        if rng.random() < 0.55:
            size = 1
        else:
            size = int(rng.bounded_pareto(0.7, 2.0, 200.0))
        size = min(size, total - placed)
        sizes.append(size)
        placed += size
    return sizes


def _sample_table_sizes(rng, n, params):
    """Target monlist table sizes: heavy-tailed with a primed-full spike."""
    base = rng.bounded_pareto(params.table_alpha, 1.0, 600.0, size=n)
    sizes = np.floor(base).astype(int)
    full = rng.bernoulli(params.full_table_fraction, size=n)
    sizes[full] = 600
    return sizes


def _make_background_clients(rng, host_seed_rng, n_clients, birth):
    """Static client population for one host (see BackgroundClients)."""
    if n_clients <= 0:
        return BackgroundClients(
            ips=np.empty(0, dtype=np.int64),
            ports=np.empty(0, dtype=np.int64),
            intervals=np.empty(0, dtype=np.float64),
            first_polls=np.empty(0, dtype=np.float64),
            one_shot=np.empty(0, dtype=bool),
        )
    ips = host_seed_rng.integers(0x0B000000, 0xDF000000, size=n_clients)
    ports = host_seed_rng.integers(1024, 65535, size=n_clients)
    # Poll cadence: lognormal around ~2048 s with long tails out to days.
    intervals = np.clip(host_seed_rng.lognormal_for_median(2048.0, 1.6, size=n_clients), 64.0, 14 * DAY)
    first_polls = birth + host_seed_rng.uniform(0.0, 30 * DAY, size=n_clients)
    one_shot = host_seed_rng.bernoulli(0.3, size=n_clients)
    return BackgroundClients(
        ips=ips.astype(np.int64),
        ports=ports.astype(np.int64),
        intervals=intervals,
        first_polls=first_polls,
        one_shot=one_shot,
    )


def _sample_impl(rng):
    u = rng.random()
    acc = 0.0
    for impls, weight in _IMPL_MIX:
        acc += weight
        if u < acc:
            return impls
    return _IMPL_MIX[-1][0]


def _sample_restart_interval(rng):
    """Daemon restart cadence: ~10% never restart in-window, the rest have a
    lognormal uptime with median ≈ 55 h.  This is the lever behind §4.2's
    ~44 h median view window *and* the small (median ≈6 entry) tables: a
    short window retains only recent clients/scanners."""
    if rng.random() < 0.10:
        return None
    return float(np.clip(rng.lognormal_for_median(55 * HOUR, 0.8), 6 * HOUR, 45 * DAY))


def _pick_infra_ip(rng, registry, pbl, kind_systems):
    """A non-end-host address in a random infrastructure AS."""
    weights = [w for _, w in _INFRA_KIND_WEIGHTS]
    kinds = [k for k, _ in _INFRA_KIND_WEIGHTS]
    for _ in range(64):
        kind = kinds[int(rng.choice(len(kinds), p=weights))]
        systems = kind_systems[kind]
        system = systems[int(rng.integers(0, len(systems)))]
        ip = system.random_ip(rng)
        if not pbl.is_end_host(ip):
            return ip, system
    raise RuntimeError("could not place an infrastructure host")


def _pick_end_host_ip(rng, kind_systems, pbl):
    """An end-host address (residential pool or a campus dynamic range)."""
    residential = kind_systems[NetworkKind.RESIDENTIAL]
    for _ in range(64):
        system = residential[int(rng.integers(0, len(residential)))]
        ip = system.random_ip(rng)
        if pbl.is_end_host(ip):
            return ip, system
    raise RuntimeError("could not place an end host")


#: Cluster-id stride per build block: block ``b`` allocates cluster ids in
#: ``[b * _CLUSTER_STRIDE, (b+1) * _CLUSTER_STRIDE)`` so ids never collide
#: across blocks without any cross-block coordination.
_CLUSTER_STRIDE = 2**22


def _host_block_worker(ctx, block):
    """Generate one block of the host population (cohort, DHCP chains,
    weekly arrivals, and a slice of the non-amplifier rest).

    Every draw comes from children of ``rng.child(f"block-{block}")`` —
    a pure derivation from the master seed, so the block's bytes are
    identical whether it runs in the parent or in a forked worker, in
    any order relative to the other blocks.
    """
    from repro.population.remediation import version_survival_curve

    rng, registry, pbl, params, remediation, mon_counts, rest_counts = ctx
    version_curve = version_survival_curve()
    brng = rng.child(f"block-{block}")
    place_rng = brng.child("placement")
    attr_rng = brng.child("attrs")
    table_rng = brng.child("tables")
    client_rng = brng.child("clients")
    remed_rng = brng.child("remediation")
    churn_rng = brng.child("churn")

    kind_systems = {kind: registry.systems_of_kind(kind) for kind in NetworkKind}
    hosts = []
    cluster_base = block * _CLUSTER_STRIDE
    cluster_counter = 0

    # ---- monlist amplifier cohort (this block's slice) ----------------------
    n_mon = mon_counts[block]
    n_end = int(n_mon * params.end_host_fraction)
    n_infra = n_mon - n_end
    attrs = sample_system_attributes(attr_rng, n_mon, population="amplifier")
    table_sizes = _sample_table_sizes(table_rng, n_mon, params)

    infra_sizes = _sample_cluster_sizes(place_rng, n_infra)
    slots = []  # (ip, system, is_end_host, cluster_id)
    for size in infra_sizes:
        ip, system = _pick_infra_ip(place_rng, registry, pbl, kind_systems)
        for offset in range(size):
            slots.append((ip + offset, system, False, cluster_base + cluster_counter))
        cluster_counter += 1
    for _ in range(n_end):
        ip, system = _pick_end_host_ip(place_rng, kind_systems, pbl)
        slots.append((ip, system, True, cluster_base + cluster_counter))
        cluster_counter += 1

    # Cluster-correlated remediation: members of a managed cluster usually
    # get patched together (§6.1's "closely-addressed ... managed together").
    cluster_u = {}
    for index, (ip, system, is_end, cluster_id) in enumerate(slots[:n_mon]):
        attr = attrs[index]
        if cluster_id not in cluster_u:
            cluster_u[cluster_id] = float(remed_rng.uniform(1e-12, 1.0))
        shared = cluster_u[cluster_id]
        u = shared if (not is_end and remed_rng.random() < 0.7) else float(
            remed_rng.uniform(1e-12, 1.0)
        )
        multiplier = remediation.multiplier_for(system.continent, is_end)
        remediation_time = remediation.sample_time(u, multiplier)
        size = int(table_sizes[index])
        host = NtpHost(
            ip=ip,
            asn=system.asn,
            continent=system.continent,
            country=system.country,
            is_end_host=is_end,
            attrs=attr,
            responds_version=bool(attr_rng.random() < params.amplifier_version_fraction),
            monlist_amplifier=True,
            implementations=_sample_impl(attr_rng),
            base_clients=size,
            primed_full=size >= 600,
            restart_interval=_sample_restart_interval(attr_rng),
            birth=0.0,
            remediation_time=remediation_time,
            also_dns_resolver=bool(attr_rng.random() < params.dns_overlap_fraction),
            cluster_id=cluster_id,
        )
        host.clients = _make_background_clients(client_rng, client_rng, size, host.birth)
        hosts.append(host)

    # ---- DHCP churn chains for this block's end-host amplifiers -------------
    chained = []
    for host in hosts:
        if not host.is_end_host:
            continue
        horizon = host.remediation_time if host.remediation_time is not None else params.window_end
        cursor = host.birth
        current = host
        while True:
            lease = float(churn_rng.exponential(params.lease_mean))
            lease = max(lease, DAY)
            if cursor + lease >= horizon:
                break
            current.death = cursor + lease
            cursor += lease
            ip, system = _pick_end_host_ip(place_rng, kind_systems, pbl)
            successor = NtpHost(
                ip=ip,
                asn=system.asn,
                continent=system.continent,
                country=system.country,
                is_end_host=True,
                attrs=current.attrs,
                responds_version=current.responds_version,
                monlist_amplifier=True,
                implementations=current.implementations,
                base_clients=current.base_clients,
                primed_full=current.primed_full,
                restart_interval=current.restart_interval,
                birth=cursor,
                remediation_time=current.remediation_time,
                also_dns_resolver=current.also_dns_resolver,
                cluster_id=current.cluster_id,
            )
            successor.clients = _make_background_clients(
                client_rng, client_rng, successor.base_clients, successor.birth
            )
            chained.append(successor)
            current = successor
    hosts.extend(chained)

    # ---- weekly trickle of brand-new amplifiers (1/HOST_BLOCKS each) --------
    # Thinning a Poisson stream is exact: the sum of the blocks' independent
    # Poisson(weekly / HOST_BLOCKS) draws is Poisson(weekly), so the global
    # arrival process keeps its calibrated rate at any block count.
    arrivals = []
    publicity_start = date_to_sim(2014, 1, 10)
    n_weeks = int((params.window_end - publicity_start) // WEEK)
    weekly = params.arrival_weekly_fraction * params.n_monlist / HOST_BLOCKS
    arrival_attrs_needed = int(weekly * n_weeks) + 8
    new_attrs = sample_system_attributes(attr_rng, arrival_attrs_needed, population="amplifier")
    attr_cursor = 0
    for week in range(n_weeks):
        n_new = int(churn_rng.poisson(weekly))
        for _ in range(n_new):
            if attr_cursor >= len(new_attrs):
                break
            birth = publicity_start + week * WEEK + float(churn_rng.uniform(0, WEEK))
            is_end = bool(churn_rng.random() < 0.5)
            if is_end:
                ip, system = _pick_end_host_ip(place_rng, kind_systems, pbl)
            else:
                ip, system = _pick_infra_ip(place_rng, registry, pbl, kind_systems)
            attr = new_attrs[attr_cursor]
            attr_cursor += 1
            # New arrivals are mostly transient (the "seen in a single
            # weekly sample" crowd): fresh installs noticed and patched
            # quickly while the community is actively remediating, with a
            # small long-lived residue.  This keeps the pool in the plateau
            # equilibrium Figure 3 shows from mid-March on.
            if churn_rng.random() < 0.05:
                remediation_time = None
            else:
                lifetime = max(2 * DAY, float(churn_rng.exponential(10 * DAY)))
                remediation_time = birth + lifetime
            size = int(_sample_table_sizes(table_rng, 1, params)[0])
            host = NtpHost(
                ip=ip,
                asn=system.asn,
                continent=system.continent,
                country=system.country,
                is_end_host=is_end,
                attrs=attr,
                responds_version=bool(attr_rng.random() < params.amplifier_version_fraction),
                monlist_amplifier=True,
                implementations=_sample_impl(attr_rng),
                base_clients=size,
                primed_full=size >= 600,
                restart_interval=_sample_restart_interval(attr_rng),
                birth=birth,
                remediation_time=remediation_time,
                also_dns_resolver=bool(attr_rng.random() < params.dns_overlap_fraction),
                cluster_id=cluster_base + cluster_counter,
            )
            cluster_counter += 1
            host.clients = _make_background_clients(client_rng, client_rng, size, birth)
            arrivals.append(host)
    hosts.extend(arrivals)

    # ---- this block's slice of the non-amplifier rest -----------------------
    n_rest = rest_counts[block]
    rest_attrs = sample_system_attributes(attr_rng, n_rest, population="all")
    version_u = remed_rng.uniform(1e-12, 1.0, size=n_rest)
    for i in range(n_rest):
        is_end = bool(attr_rng.random() < 0.30)
        if is_end:
            ip, system = _pick_end_host_ip(place_rng, kind_systems, pbl)
        else:
            ip, system = _pick_infra_ip(place_rng, registry, pbl, kind_systems)
        responds_version = bool(attr_rng.random() < params.version_responder_fraction)
        version_off = version_curve.inverse(min(max(float(version_u[i]), 1e-12), 1.0))
        hosts.append(
            NtpHost(
                ip=ip,
                asn=system.asn,
                continent=system.continent,
                country=system.country,
                is_end_host=is_end,
                attrs=rest_attrs[i],
                responds_version=responds_version,
                monlist_amplifier=False,
                implementations=frozenset(),
                base_clients=0,
                primed_full=False,
                birth=0.0,
                version_off_time=version_off,
                cluster_id=-1,
            )
        )
    return hosts


def build_host_pool(rng, registry, pbl, params=None, remediation_model=None, runner=None):
    """Generate the full NTP host population.

    Returns a :class:`HostPool`.  Determinism: everything is drawn from
    child streams of ``rng``, so the same (seed, params, registry) triple
    always yields the identical population.

    The population is generated in :data:`HOST_BLOCKS` fixed blocks, each
    sized by :func:`balanced_split` and seeded by its own
    ``rng.child(f"block-{b}")`` stream.  ``runner`` (a
    :class:`repro.util.ShardRunner`) distributes the blocks across a fork
    pool; with no runner — or with ``--jobs 1`` — the *same* blocks run
    serially in the same order, so the merged pool is byte-identical at
    any job count by construction.  Cross-block passes (mega selection,
    the giga tail, the version-off curve) run in the parent over the
    merged list, from their own named streams.
    """
    from repro.population.remediation import RemediationModel
    from repro.population.remediation import version_survival_curve
    from repro.util.pool import ShardRunner

    params = params or PoolParams()
    remediation = remediation_model or RemediationModel()
    version_curve = version_survival_curve()
    runner = runner or ShardRunner(1)

    mon_counts = tuple(balanced_split(params.n_monlist, HOST_BLOCKS))
    n_rest_total = max(0, params.n_all_ntp - params.n_monlist - params.giga_count)
    rest_counts = tuple(balanced_split(n_rest_total, HOST_BLOCKS))
    ctx = (rng, registry, pbl, params, remediation, mon_counts, rest_counts)
    block_hosts = runner.map("hosts", _host_block_worker, ctx, HOST_BLOCKS)

    hosts = []
    block_lengths = []
    for block in block_hosts:
        hosts.extend(block)
        block_lengths.append(len(block))

    # ---- mega amplifiers (§3.4): a cross-block pass in the parent ------------
    mega_rng = rng.child("mega")
    infra_hosts = [h for h in hosts if h.monlist_amplifier and not h.is_end_host]
    n_mega = min(params.n_mega, len(infra_hosts))
    mega_indices = mega_rng.choice(len(infra_hosts), size=n_mega, replace=False)
    mega_attrs = sample_system_attributes(mega_rng, n_mega, population="mega")
    jp_systems = [registry.special[f"JP-NET-{i}"] for i in range(1, 8)]
    for order, index in enumerate(mega_indices):
        host = infra_hosts[int(index)]
        host.is_mega = True
        host.attrs = mega_attrs[order]
        # Loop factors: heavy-tailed; most megas return 100KB..10MB.
        host.loop_factor = max(2, int(mega_rng.bounded_pareto(0.6, 2.0, 2.0e4)))
        host.responds_version = bool(mega_rng.random() < 0.5)
        # Mega amps tend to persist (badly managed): slow their remediation.
        if host.remediation_time is not None and mega_rng.random() < 0.35:
            host.remediation_time = None
    # The nine giga amplifiers, all in Japanese networks, largest ~136 GB.
    # They form the tail block (index HOST_BLOCKS), which also receives the
    # scenario layer's planted local amplifiers via :meth:`HostPool.extend`.
    giga_client_rng = rng.child("giga-clients")
    giga_cluster_base = HOST_BLOCKS * _CLUSTER_STRIDE
    giga_loops = [2_700_000, 900_000, 400_000, 250_000, 150_000, 90_000, 60_000, 40_000, 25_000]
    giga_attrs = sample_system_attributes(mega_rng, params.giga_count, population="mega")
    gigas = []
    for i in range(params.giga_count):
        system = jp_systems[i % len(jp_systems)]
        ip = system.random_ip(mega_rng)
        host = NtpHost(
            ip=ip,
            asn=system.asn,
            continent=system.continent,
            country=system.country,
            is_end_host=False,
            attrs=giga_attrs[i],
            responds_version=bool(i % 2 == 0),
            monlist_amplifier=True,
            implementations=frozenset({IMPL_XNTPD}),
            base_clients=600,
            primed_full=True,
            loop_factor=giga_loops[i % len(giga_loops)],
            is_mega=True,
            restart_interval=None,
            birth=0.0,
            remediation_time=date_to_sim(2014, 6, 7),  # fixed after JPCERT contact
            cluster_id=giga_cluster_base + i,
        )
        host.clients = _make_background_clients(giga_client_rng, giga_client_rng, 600, 0.0)
        gigas.append(host)
    hosts.extend(gigas)
    block_lengths.append(len(gigas))

    # Version turn-off for amplifier hosts follows the same slow curve —
    # one parent-side vectorized draw over the merged list, so it is
    # independent of how the blocks were distributed.
    voff_rng = rng.child("version-off")
    amp_version_u = voff_rng.uniform(1e-12, 1.0, size=len(hosts))
    for host, u in zip(hosts, amp_version_u):
        if host.monlist_amplifier and host.responds_version and host.version_off_time is None:
            host.version_off_time = version_curve.inverse(min(max(float(u), 1e-12), 1.0))

    return HostPool(hosts, params, block_lengths=block_lengths)
