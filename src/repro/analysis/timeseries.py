"""Global traffic/attack time-series helpers (Figures 1, 2)."""

from dataclasses import dataclass

from repro.measurement.arbor import SIZE_LARGE, SIZE_MEDIUM, SIZE_SMALL
from repro.util.simtime import DAY, format_sim

__all__ = ["traffic_fractions", "peak_traffic_date", "attack_fraction_rows", "daily_attack_counts"]


def traffic_fractions(arbor_dataset, include_gaps=False):
    """Figure 1: [(date string, ntp fraction, dns fraction)] per day.

    With ``include_gaps``, days the collector was down appear in place as
    ``(date, None, None)`` markers — an explicit "no data" the renderers
    show as a gap, never a silently interpolated value.
    """
    rows = [
        (d.day, format_sim(d.day * DAY), d.ntp_fraction, d.dns_fraction)
        for d in arbor_dataset.daily
    ]
    if include_gaps:
        for day in getattr(arbor_dataset, "missing_days", ()) or ():
            rows.append((day, format_sim(day * DAY), None, None))
        rows.sort(key=lambda r: r[0])
    return [(date, ntp, dns) for _, date, ntp, dns in rows]


def peak_traffic_date(arbor_dataset):
    """The date NTP traffic peaked (paper: February 11th)."""
    peak = arbor_dataset.peak_ntp_day()
    if peak is None:
        return "(no data)"
    return format_sim(peak.day * DAY)


@dataclass(frozen=True)
class AttackFractionRow:
    """One Figure-2 month."""

    month: str
    small: float
    medium: float
    large: float
    overall: float


def attack_fraction_rows(arbor_dataset):
    """Figure 2: per-month NTP fraction of attacks, by size bin."""
    rows = []
    for month, stats in arbor_dataset.monthly_attacks.items():
        rows.append(
            AttackFractionRow(
                month=month,
                small=stats.ntp_fraction(SIZE_SMALL),
                medium=stats.ntp_fraction(SIZE_MEDIUM),
                large=stats.ntp_fraction(SIZE_LARGE),
                overall=stats.ntp_fraction(),
            )
        )
    return rows


def daily_attack_counts(attacks):
    """Ground-truth attack starts per day (used for lead-lag checks).

    Vectorized group-by; keys keep the scalar loop's first-occurrence
    insertion order (``//`` on floats is ``np.floor_divide`` exactly).
    """
    import numpy as np

    starts = np.array([attack.start for attack in attacks], dtype=np.float64)
    if not len(starts):
        return {}
    days = np.floor_divide(starts, DAY).astype(np.int64)
    uniq, first_idx, counts = np.unique(days, return_index=True, return_counts=True)
    order = np.argsort(first_idx, kind="stable")
    return {int(uniq[k]): int(counts[k]) for k in order}
