"""Service lifecycle: start/query/shutdown, snapshot consistency, 4xx.

Two layers of coverage:

* in-process asyncio tests drive :class:`StreamService` directly —
  concurrent queries during ingestion must return internally consistent
  snapshots (no torn reads), malformed queries must come back as 4xx
  JSON rather than crashing the loop;
* a subprocess test runs the real ``python -m repro serve`` CLI, queries
  it over HTTP, sends SIGTERM, and asserts a clean drain (exit 0, the
  drained summary line, no process left behind) — the no-orphan
  discipline of ``tests/test_supervision.py`` applied to the server.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.scenario.world import PaperWorld
from repro.stream import StreamEngine, StreamService, replay_plan, replay_records
from repro.stream.loadgen import _fetch

SCALE = 0.0002
SEED = 7


@pytest.fixture(scope="module")
def small_world():
    return PaperWorld.build(seed=SEED, scale=SCALE)


def _service_for(world, **kwargs):
    plan = replay_plan(world)
    engine = StreamEngine.for_world(world, plan=plan)
    # Tiny batches maximize ingest/query interleaving: more chances to
    # catch a torn read if one were possible.
    return StreamService(engine, replay_records(world), batch=16, **kwargs), plan


# ---------------------------------------------------------------------------
# In-process: consistency and error handling
# ---------------------------------------------------------------------------


def test_concurrent_queries_see_consistent_snapshots(small_world):
    async def exercise():
        service, plan = _service_for(small_world)
        await service.start()
        host, port = service.host, service.port
        inconsistencies = []

        async def reader():
            while not service.ingest_done:
                status, body = await _fetch(host, port, "/stats")
                assert status == 200
                windowed = body["windowed_victim_pairs"]
                total = body["totals"]["victim_pairs"]
                if windowed != total:
                    inconsistencies.append((windowed, total))

        await asyncio.gather(reader(), reader(), reader())
        assert service.ingest_done
        # End state: everything ingested, ledger balanced.
        status, body = await _fetch(host, port, "/query/ingest")
        assert status == 200
        assert body["result"]["balanced"] is True
        assert body["result"]["records_seen"] == plan["expected_total"]
        service.request_shutdown()
        await service.stop()
        return inconsistencies

    assert asyncio.run(exercise()) == []


def test_malformed_queries_are_4xx_json_not_crashes(small_world):
    async def exercise():
        service, _plan = _service_for(small_world)
        await service.start()
        host, port = service.host, service.port
        cases = [
            ("/query/nonsense", 400),
            ("/query/top_victims?n=banana", 400),
            ("/query/top_victims?n=0", 400),
            ("/nope", 404),
            ("/query/", 404),
        ]
        results = []
        for target, expected in cases:
            status, body = await _fetch(host, port, target)
            results.append((target, status, expected, body))
        # A garbage request line must not kill the server either.
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(b"\r\n")
        await writer.drain()
        garbage_reply = await reader.read()
        writer.close()
        await writer.wait_closed()
        # POST is rejected, not crashed on.
        post_status, _ = await _fetch_method(host, port, "POST", "/health")
        # The service must still answer normally afterwards.
        status_after, body_after = await _fetch(host, port, "/health")
        service.request_shutdown()
        await service.stop()
        return results, garbage_reply, post_status, status_after, body_after

    results, garbage_reply, post_status, status_after, body_after = asyncio.run(
        exercise()
    )
    for target, status, expected, body in results:
        assert status == expected, (target, status, body)
        assert "error" in body, target
    assert b"400" in garbage_reply.split(b"\r\n", 1)[0]
    assert post_status == 405
    assert status_after == 200 and body_after["ok"] is True


async def _fetch_method(host, port, method, target):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(f"{method} {target} HTTP/1.0\r\n\r\n".encode())
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    return int(head.split(None, 2)[1]), json.loads(body)


def test_queries_after_ingest_completion_match_direct_engine(small_world):
    async def exercise():
        service, _plan = _service_for(small_world)
        await service.start()
        while not service.ingest_done:
            await asyncio.sleep(0.01)
        status, body = await _fetch(service.host, service.port, "/query/victims")
        service.request_shutdown()
        await service.stop()
        return status, body["result"], service.engine

    status, served, engine = asyncio.run(exercise())
    assert status == 200
    assert served == json.loads(json.dumps(engine.query("victims")))


# ---------------------------------------------------------------------------
# Response cache: versioned, never stale
# ---------------------------------------------------------------------------


def _fresh_render(service, target):
    status, body = service._route(target)
    return status, json.dumps(body, separators=(",", ":")).encode()


def test_response_cache_hits_are_byte_identical_and_never_stale(small_world):
    from repro.stream import StreamEngine

    engine = StreamEngine.for_world(small_world, plan=replay_plan(small_world))
    records = list(replay_records(small_world))
    service = StreamService(engine, iter(()))
    mid = len(records) // 2

    engine.ingest_many(records[:mid])
    status_a, body_a = service._response_for("/query/victims")
    assert (status_a, body_a) == _fresh_render(service, "/query/victims")
    assert service.cache_misses == 1 and service.cache_hits == 0
    # Unchanged engine: served from cache, byte-identical.
    status_b, body_b = service._response_for("/query/victims")
    assert (status_b, body_b) == (status_a, body_a)
    assert service.cache_hits == 1

    # Every applied batch moves the generation: the entry is stale and
    # must be re-rendered against the new state — including across the
    # window closes the second half and close() perform.
    engine.ingest_many(records[mid:])
    engine.close()
    status_c, body_c = service._response_for("/query/victims")
    assert service.cache_misses == 2
    assert (status_c, body_c) == _fresh_render(service, "/query/victims")
    assert body_c != body_a


def test_sketch_backed_tops_survive_darknet_only_batches(small_world):
    from repro.stream import StreamEngine, StreamRecord

    engine = StreamEngine.for_world(small_world, plan=replay_plan(small_world))
    records = list(replay_records(small_world))
    service = StreamService(engine, iter(()))
    engine.ingest_many(records[: len(records) // 2])

    service._response_for("/query/top_victims?n=5")
    service._response_for("/query/ingest")
    hits, misses = service.cache_hits, service.cache_misses

    # A darknet-only record at the stream head: generation moves (so the
    # accounting query re-renders) but no capture state is touched (so
    # the capture-keyed top stays cached).
    engine.ingest(
        StreamRecord(
            t=engine.max_event_t, kind="darknet", uid=("dk", -1, 1), payload=7
        )
    )
    status, body = service._response_for("/query/top_victims?n=5")
    assert service.cache_hits == hits + 1
    assert (status, body) == _fresh_render(service, "/query/top_victims?n=5")
    service._response_for("/query/ingest")
    assert service.cache_misses == misses + 1


# ---------------------------------------------------------------------------
# Keep-alive: connection reuse, opt-out, HTTP/1.0 close
# ---------------------------------------------------------------------------


async def _raw_exchange(reader, writer, target, version="HTTP/1.1", headers=""):
    writer.write(f"GET {target} {version}\r\n{headers}\r\n".encode())
    await writer.drain()
    head = await reader.readuntil(b"\r\n\r\n")
    length = next(
        int(line.split(b":", 1)[1])
        for line in head.split(b"\r\n")
        if line.lower().startswith(b"content-length:")
    )
    body = await reader.readexactly(length)
    return head, json.loads(body)


def test_keepalive_connection_serves_many_requests(small_world):
    async def exercise():
        service, _plan = _service_for(small_world)
        await service.start()
        reader, writer = await asyncio.open_connection(service.host, service.port)
        bodies = []
        for _ in range(3):
            head, body = await _raw_exchange(reader, writer, "/health")
            assert b"Connection: keep-alive" in head
            bodies.append(body)
        writer.close()
        await writer.wait_closed()
        opened, served = service.connections_opened, service.requests_served
        service.request_shutdown()
        await service.stop()
        return bodies, opened, served

    bodies, opened, served = asyncio.run(exercise())
    assert all(body["ok"] is True for body in bodies)
    # The reuse satellite's point: one connection, many requests.
    assert opened == 1 and served == 3


def test_no_keepalive_service_closes_after_each_response(small_world):
    async def exercise():
        service, _plan = _service_for(small_world, keepalive=False)
        await service.start()
        reader, writer = await asyncio.open_connection(service.host, service.port)
        head, body = await _raw_exchange(reader, writer, "/health")
        trailing = await reader.read()  # server closes: EOF after the body
        writer.close()
        await writer.wait_closed()
        service.request_shutdown()
        await service.stop()
        return head, body, trailing

    head, body, trailing = asyncio.run(exercise())
    assert b"Connection: close" in head
    assert body["ok"] is True
    assert trailing == b""


def test_http10_client_without_keepalive_header_gets_closed(small_world):
    async def exercise():
        service, _plan = _service_for(small_world)
        await service.start()
        reader, writer = await asyncio.open_connection(service.host, service.port)
        head, body = await _raw_exchange(reader, writer, "/health", version="HTTP/1.0")
        trailing = await reader.read()
        writer.close()
        await writer.wait_closed()
        service.request_shutdown()
        await service.stop()
        return head, body, trailing

    head, body, trailing = asyncio.run(exercise())
    assert b"Connection: close" in head
    assert body["ok"] is True
    assert trailing == b""


def test_loadgen_reports_connection_reuse(small_world):
    from repro.stream import run_loadgen

    kept = run_loadgen(small_world, clients=2, requests=4, batch=64)
    assert kept["keepalive"] is True
    assert kept["connections"]["opened_by_clients"] < kept["requests_total"]
    assert kept["response_cache"]["hits"] + kept["response_cache"]["misses"] > 0
    unkept = run_loadgen(small_world, clients=2, requests=4, batch=64, keepalive=False)
    assert unkept["keepalive"] is False
    assert unkept["connections"]["opened_by_clients"] >= unkept["requests_total"]


# ---------------------------------------------------------------------------
# Subprocess: the real CLI, SIGTERM drain, no orphans
# ---------------------------------------------------------------------------


def _pid_exists(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    return True


def test_serve_cli_lifecycle_sigterm_drains_cleanly():
    env = os.environ.copy()
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH")])
    )
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--seed",
            str(SEED),
            "--scale",
            str(SCALE),
            "--quiet",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
        text=True,
    )
    try:
        serving = json.loads(proc.stdout.readline())["serving"]
        base = f"http://127.0.0.1:{serving['port']}"
        with urllib.request.urlopen(base + "/health", timeout=10) as response:
            health = json.loads(response.read())
        assert health["ok"] is True
        with urllib.request.urlopen(
            base + "/query/top_victims?n=3", timeout=10
        ) as response:
            top = json.loads(response.read())
        assert top["query"] == "top_victims"
        assert len(top["result"]["entries"]) <= 3

        proc.send_signal(signal.SIGTERM)
        stdout, _ = proc.communicate(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=30)

    assert proc.returncode == 0, stdout
    drained = json.loads(stdout.strip().splitlines()[-1])["drained"]
    assert drained["requests_served"] >= 2
    assert drained["balanced"] is True

    deadline = time.time() + 10
    while time.time() < deadline:
        if not _pid_exists(proc.pid):
            break
        time.sleep(0.1)
    assert not _pid_exists(proc.pid), "serve process survived SIGTERM"
