"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. **On-wire vs payload BAF** — the paper computes BAF over on-wire bytes
   (84-byte minimum frames), deliberately lower than Rossow's UDP-payload
   ratio; quantify the gap.
2. **Implementation-code coverage** — the ONP scans probed only one of the
   two monlist implementation codes; probing both recovers the hidden
   v1-only amplifiers (Kührer saw ~9% more from a second vantage).
3. **Exact MRU maintenance** — victim recovery depends on maintaining real
   monitor tables; a naive "latest attack only" table loses victims.
"""

from repro.analysis import on_wire_baf, payload_baf, parse_sample
from repro.ntp.constants import IMPL_XNTPD, IMPL_XNTPD_OLD


def test_ablation_onwire_vs_payload_baf(benchmark, parsed_monlist):
    tables = parsed_monlist[0].tables

    def compute():
        return [(on_wire_baf(t), payload_baf(t)) for t in tables]

    pairs = benchmark(compute)
    # The payload ratio always exceeds the on-wire ratio: the 8-byte query
    # payload understates the query's real cost on the wire by >10x.
    assert all(p > w for w, p in pairs)
    ratio = sorted(p / w for w, p in pairs)[len(pairs) // 2]
    assert ratio > 4  # typical gap between the two definitions
    print(f"\nAblation BAF: median payload/on-wire ratio = {ratio:.1f}")


def test_ablation_dual_implementation_probing(benchmark, world):
    """Probing both implementation codes recovers the v1-only amplifiers."""
    t = world.onp.monlist_samples[0].t

    def count_pools():
        alive = [h for h in world.hosts.monlist_hosts if h.monlist_active(t)]
        v2 = sum(1 for h in alive if h.answers_implementation(IMPL_XNTPD))
        both = sum(
            1
            for h in alive
            if h.answers_implementation(IMPL_XNTPD)
            or h.answers_implementation(IMPL_XNTPD_OLD)
        )
        return v2, both

    v2_only_view, dual_view = benchmark(count_pools)
    gain = dual_view / v2_only_view - 1.0
    # Kührer's second vantage found ~9% more; our hidden share is the
    # v1-only implementation mix (~10%).
    assert 0.04 < gain < 0.25
    print(f"\nAblation impl: dual-code probing finds {100 * gain:.1f}% more amplifiers")


def test_ablation_mru_fidelity(benchmark, world):
    """Victims per table: the MRU table accumulates multiple victims per
    amplifier; keeping only the most recent client (a degenerate table)
    would lose most of the victimology."""
    sample = world.onp.monlist_samples[6]

    def victims_lost():
        from repro.analysis import CLASS_VICTIM, classify_entry

        full = set()
        degenerate = set()
        for capture in sample.captures:
            table = parse_sample_one(capture)
            victims = [e for e in table.entries if classify_entry(e) == CLASS_VICTIM]
            full.update(e.addr for e in victims)
            if victims:
                degenerate.add(victims[0].addr)
        return len(full), len(degenerate)

    def parse_sample_one(capture):
        from repro.analysis import reconstruct_table

        return reconstruct_table(capture)

    full, degenerate = benchmark(victims_lost)
    assert full > degenerate  # the MRU history carries real information
    print(f"\nAblation MRU: full tables see {full} victims vs {degenerate} most-recent-only")
