"""Remediation dynamics of vulnerable-server pools.

§6 documents the community response: the monlist amplifier pool fell from
1.4M (2014-01-10) to ~110K by late March — a 92% reduction — while the
``version`` responder pool shrank only 19% and the open-DNS-resolver pool
barely moved over a year.  Remediation speed also varied by continent
(NA 97% ... SA 63%) and by host class (end-host share of the remaining pool
doubled from ~17% to ~34%, suggesting professionally-managed servers were
patched faster).

The model is proportional-hazards sampling against a calibrated baseline
survival curve: host ``i`` survives to time ``t`` with probability
``S(t)**m_i`` where ``m_i`` multiplies per-continent and per-class factors.
Sampling ``u ~ U(0,1)`` and solving ``S(t)**m = u`` yields the host's
remediation time.
"""

import math

from repro.util.simtime import WEEK, date_to_sim

__all__ = [
    "SurvivalCurve",
    "MONLIST_SURVIVAL_ANCHORS",
    "monlist_survival_curve",
    "version_survival_curve",
    "dns_survival_curve",
    "RemediationModel",
    "CONTINENT_MULTIPLIER",
    "END_HOST_MULTIPLIER",
    "MANAGED_MULTIPLIER",
]

#: Weekly fractions of the initial monlist pool still vulnerable, read off
#: Figure 3 (counts normalized by the 1.405M seen on 2014-01-10).
MONLIST_SURVIVAL_ANCHORS = [
    (date_to_sim(2014, 1, 10), 1.000),
    (date_to_sim(2014, 1, 17), 0.909),
    (date_to_sim(2014, 1, 24), 0.482),
    (date_to_sim(2014, 1, 31), 0.312),
    (date_to_sim(2014, 2, 7), 0.260),
    (date_to_sim(2014, 2, 14), 0.168),
    (date_to_sim(2014, 2, 21), 0.126),
    (date_to_sim(2014, 2, 28), 0.114),
    (date_to_sim(2014, 3, 7), 0.088),
    (date_to_sim(2014, 3, 14), 0.0865),
    (date_to_sim(2014, 3, 21), 0.0787),
    (date_to_sim(2014, 3, 28), 0.0771),
    (date_to_sim(2014, 4, 4), 0.0760),
    (date_to_sim(2014, 4, 11), 0.0749),
    (date_to_sim(2014, 4, 18), 0.0740),
    (date_to_sim(2014, 6, 14), 0.0650),
]

#: §6.1's per-continent remediation differences expressed as hazard
#: multipliers (derived from the final remediated fractions).
CONTINENT_MULTIPLIER = {
    "NA": 1.36,
    "OC": 1.03,
    "EU": 0.86,
    "AS": 0.71,
    "AF": 0.57,
    "SA": 0.385,
}

#: End hosts remediate slower; managed infrastructure faster (§6.1).
END_HOST_MULTIPLIER = 0.62
MANAGED_MULTIPLIER = 1.09


class SurvivalCurve:
    """A non-increasing piecewise-exponential survival function S(t).

    Between anchors, ``log S`` is linear (constant hazard per segment),
    which makes inversion exact and keeps S positive.
    """

    def __init__(self, anchors):
        if len(anchors) < 2:
            raise ValueError("need at least two anchors")
        times = [t for t, _ in anchors]
        values = [v for _, v in anchors]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("anchor times must be strictly increasing")
        if any(v <= 0 or v > 1 for v in values):
            raise ValueError("survival values must be in (0, 1]")
        if any(b > a for a, b in zip(values, values[1:])):
            raise ValueError("survival must be non-increasing")
        self._times = times
        self._logs = [math.log(v) for v in values]

    @property
    def start(self):
        return self._times[0]

    @property
    def end(self):
        return self._times[-1]

    @property
    def floor(self):
        return math.exp(self._logs[-1])

    def value_at(self, t):
        """S(t): 1 before the first anchor, floor after the last.

        At exactly the first anchor time the anchor's own value applies
        (a curve may open below 1.0).
        """
        if t < self._times[0]:
            return 1.0
        if t == self._times[0]:
            return math.exp(self._logs[0])
        if t >= self._times[-1]:
            return self.floor
        for i in range(len(self._times) - 1):
            t0, t1 = self._times[i], self._times[i + 1]
            if t0 <= t <= t1:
                frac = (t - t0) / (t1 - t0)
                return math.exp(self._logs[i] + frac * (self._logs[i + 1] - self._logs[i]))
        raise AssertionError("unreachable")

    def inverse(self, s):
        """The time at which survival first reaches ``s``.

        Returns ``None`` when ``s`` is below the curve's floor (the host
        survives the whole modeled window).
        """
        if not 0 < s <= 1:
            raise ValueError("s must be in (0, 1]")
        log_s = math.log(s)
        if log_s <= self._logs[-1]:
            return None
        if log_s >= self._logs[0]:
            return self._times[0]
        for i in range(len(self._times) - 1):
            l0, l1 = self._logs[i], self._logs[i + 1]
            if l1 <= log_s <= l0:
                if l1 == l0:
                    return self._times[i]
                frac = (l0 - log_s) / (l0 - l1)
                return self._times[i] + frac * (self._times[i + 1] - self._times[i])
        raise AssertionError("unreachable")


def monlist_survival_curve():
    """The calibrated monlist-amplifier baseline survival curve."""
    return SurvivalCurve(MONLIST_SURVIVAL_ANCHORS)


def version_survival_curve():
    """The ``version``-responder pool: flat until the version scans begin,
    then a slow ~2.3%/week decline (19% over the nine measured weeks)."""
    return SurvivalCurve(
        [
            (date_to_sim(2014, 2, 21), 1.0),
            (date_to_sim(2014, 4, 18), 0.81),
            (date_to_sim(2014, 6, 14), 0.76),
        ]
    )


def dns_survival_curve():
    """Open DNS resolvers: barely-moving decline over more than a year
    since the OpenResolverProject began publicizing counts (Fig. 10)."""
    return SurvivalCurve(
        [
            (date_to_sim(2013, 3, 25), 1.0),
            (date_to_sim(2013, 9, 1), 0.96),
            (date_to_sim(2014, 1, 1), 0.92),
            (date_to_sim(2014, 6, 14), 0.87),
        ]
    )


#: Population mix used to renormalize the hazard scale (continent weights
#: match the AS registry's; end-host share matches the initial pool).
_CALIBRATION_MIX = {
    "NA": 0.30,
    "EU": 0.30,
    "AS": 0.22,
    "SA": 0.09,
    "AF": 0.05,
    "OC": 0.04,
}
_CALIBRATION_END_HOST_SHARE = 0.185


def _mixture_survival(s, mix, end_host_share):
    """Aggregate survival when the baseline is ``s`` and hosts carry the
    continent x class multipliers (``E[s**m]`` over the population mix)."""
    total = 0.0
    for continent, weight in mix.items():
        m = CONTINENT_MULTIPLIER.get(continent, 1.0)
        total += weight * (
            end_host_share * s ** (m * END_HOST_MULTIPLIER)
            + (1 - end_host_share) * s ** (m * MANAGED_MULTIPLIER)
        )
    return total


def calibrated_monlist_curve(anchors=None, mix=None, end_host_share=None):
    """A baseline survival curve adjusted so that the *population mixture*
    tracks the paper's Figure-3 trajectory.

    Proportional-hazards multipliers below 1 inflate aggregate survival
    (Jensen), so feeding the paper's curve straight into per-host sampling
    would make the simulated pool shrink too slowly.  For each paper anchor
    value ``v`` we solve ``E[s**m] = v`` for the baseline value ``s`` by
    bisection, then build the curve from the adjusted anchors.
    """
    anchors = anchors or MONLIST_SURVIVAL_ANCHORS
    mix = mix or _CALIBRATION_MIX
    end_host_share = _CALIBRATION_END_HOST_SHARE if end_host_share is None else end_host_share
    # The observed pool includes DHCP-chain continuations, weekly arrivals,
    # and persistent mega amplifiers on top of the remediating cohort, so the
    # cohort itself must decay faster than the observed counts.  The divisor
    # ramps to ~1.6x at the tail (measured empirically against Figure 3).
    start = anchors[0][0]
    end = anchors[-1][0]

    def continuation_divisor(t):
        frac = min(1.0, max(0.0, (t - start) / (end - start)))
        return 1.0 + 1.30 * frac**1.8

    anchors = [(t, v if v >= 1.0 else v / continuation_divisor(t)) for t, v in anchors]
    adjusted = []
    for t, target in anchors:
        if target >= 1.0:
            adjusted.append((t, 1.0))
            continue
        lo, hi = 1e-9, 1.0
        for _ in range(100):
            mid = (lo + hi) / 2.0
            if _mixture_survival(mid, mix, end_host_share) > target:
                hi = mid
            else:
                lo = mid
        adjusted.append((t, (lo + hi) / 2.0))
    # Enforce monotonicity against bisection jitter.
    floor = 1.0
    monotone = []
    for t, v in adjusted:
        floor = min(floor, v)
        monotone.append((t, floor))
    return SurvivalCurve(monotone)


class RemediationModel:
    """Assigns per-host remediation times via proportional hazards."""

    def __init__(self, curve=None):
        self.curve = curve or calibrated_monlist_curve()

    def multiplier_for(self, continent, is_end_host):
        base = CONTINENT_MULTIPLIER.get(continent, 1.0)
        klass = END_HOST_MULTIPLIER if is_end_host else MANAGED_MULTIPLIER
        return base * klass

    def sample_time(self, u, multiplier=1.0):
        """Remediation time for uniform draw ``u``; None = never (in window).

        Host survival is ``S(t)**multiplier``; solving ``S(t)**m = u`` gives
        ``t = S^{-1}(u**(1/m))``.
        """
        if not 0 < u <= 1:
            raise ValueError("u must be in (0, 1]")
        if multiplier <= 0:
            raise ValueError("multiplier must be positive")
        return self.curve.inverse(u ** (1.0 / multiplier))

    def sample_times(self, rng, continents, end_host_flags):
        """Vectorized convenience: one remediation time per host."""
        if len(continents) != len(end_host_flags):
            raise ValueError("continents and end_host_flags must align")
        draws = rng.uniform(0.0, 1.0, size=len(continents))
        out = []
        for u, continent, is_eh in zip(draws, continents, end_host_flags):
            u = min(max(float(u), 1e-12), 1.0)
            out.append(self.sample_time(u, self.multiplier_for(continent, is_eh)))
        return out
