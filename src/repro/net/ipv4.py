"""IPv4 addresses as plain integers.

The simulation handles millions of addresses; representing them as ``int``
(rather than ``ipaddress.IPv4Address`` objects) keeps sets and NumPy arrays
cheap.  These helpers convert between dotted-quad strings, ints, and prefix
aggregates.
"""

from dataclasses import dataclass

__all__ = [
    "MAX_IPV4",
    "parse_ip",
    "format_ip",
    "slash24_of",
    "ip_in_prefix",
    "Prefix",
]

MAX_IPV4 = 2**32 - 1


def parse_ip(text):
    """Parse a dotted-quad string into an integer address."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"not a dotted quad: {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_ip(value):
    """Format an integer address as a dotted-quad string."""
    if not 0 <= value <= MAX_IPV4:
        raise ValueError(f"not an IPv4 address: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def slash24_of(value):
    """The /24 network (as an int) containing the given address."""
    return value & 0xFFFFFF00


def ip_in_prefix(ip, network, length):
    """True when ``ip`` falls inside ``network/length``."""
    if not 0 <= length <= 32:
        raise ValueError(f"bad prefix length {length}")
    if length == 0:
        return True
    mask = (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
    return (ip & mask) == (network & mask)


@dataclass(frozen=True, order=True)
class Prefix:
    """An IPv4 prefix ``network/length`` with the host bits zeroed."""

    network: int
    length: int

    def __post_init__(self):
        if not 0 <= self.length <= 32:
            raise ValueError(f"bad prefix length {self.length}")
        if not 0 <= self.network <= MAX_IPV4:
            raise ValueError(f"bad network {self.network}")
        masked = self.network & self.mask
        if masked != self.network:
            object.__setattr__(self, "network", masked)

    @classmethod
    def parse(cls, text):
        """Parse ``"a.b.c.d/len"`` notation."""
        addr, _, length = text.partition("/")
        if not length:
            raise ValueError(f"missing /length in {text!r}")
        return cls(parse_ip(addr), int(length))

    @property
    def mask(self):
        if self.length == 0:
            return 0
        return (0xFFFFFFFF << (32 - self.length)) & 0xFFFFFFFF

    @property
    def n_addresses(self):
        return 1 << (32 - self.length)

    @property
    def first(self):
        return self.network

    @property
    def last(self):
        return self.network + self.n_addresses - 1

    def contains(self, ip):
        return ip_in_prefix(ip, self.network, self.length)

    def contains_prefix(self, other):
        """True when ``other`` is equal to or nested inside this prefix."""
        return other.length >= self.length and self.contains(other.network)

    def nth(self, offset):
        """The address at ``offset`` within the prefix (0-based)."""
        if not 0 <= offset < self.n_addresses:
            raise IndexError(f"offset {offset} outside {self}")
        return self.network + offset

    def subprefixes(self, length):
        """Iterate the sub-prefixes of the given longer length, in order."""
        if length < self.length:
            raise ValueError("sub-prefix must be longer than parent")
        step = 1 << (32 - length)
        for net in range(self.network, self.network + self.n_addresses, step):
            yield Prefix(net, length)

    def __str__(self):
        return f"{format_ip(self.network)}/{self.length}"
