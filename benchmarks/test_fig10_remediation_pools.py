"""Figure 10: vulnerable-pool sizes relative to peak vs weeks since
publicity, for three pools.

Paper: monlist amplifiers collapse to <10% of peak within ~10 weeks of the
OpenNTPProject's publicity; the version pool declines only ~19% over nine
weeks; open DNS resolvers barely move over a year.  §6.2: the monlist pool
overlaps the DNS-resolver pool by ~7K of 107K in the latest sample (9.2%
of aggregate uniques).
"""

from repro.analysis import overlap_with_dns, pool_relative_to_peak, weeks_since
from repro.population.dns_resolvers import DNS_PUBLICITY_START
from repro.util import date_to_sim


def build_pool_series(world, parsed_monlist):
    monlist = pool_relative_to_peak([(p.t, len(p.amplifier_ips())) for p in parsed_monlist])
    version = pool_relative_to_peak([(s.t, len(s)) for s in world.onp.version_samples])
    dns = pool_relative_to_peak(
        [(s.t, s.count) for s in world.dns_pool.weekly_series(n_weeks=60)]
    )
    return monlist, version, dns


def test_fig10_remediation_pools(benchmark, world, parsed_monlist):
    monlist, version, dns = benchmark(build_pool_series, world, parsed_monlist)

    # Monlist remediated dramatically faster than the other two pools.
    assert monlist[-1][1] < 0.20  # paper: ~8% of peak
    assert version[-1][1] > 0.70  # paper: ~81% of peak
    assert dns[-1][1] > 0.80  # paper: high and flat
    assert monlist[-1][1] < version[-1][1] < dns[-1][1] + 0.15

    # §6.2 overlap with the DNS pool.
    last_ips = parsed_monlist[-1].amplifier_ips()
    overlap_ips = world.dns_pool.overlap_with_monlist(world.hosts.monlist_hosts)
    count, fraction = overlap_with_dns(last_ips, overlap_ips)
    assert 0.02 < fraction < 0.2  # paper: ~6.5% of the latest sample

    weeks = weeks_since(monlist, date_to_sim(2014, 1, 10))
    print("\nFig10 monlist (weeks since publicity: frac of peak):")
    for w, f in weeks:
        print(f"  {w:4.1f}: {f:.3f}")
    print(f"  version final: {version[-1][1]:.2f}; dns final: {dns[-1][1]:.2f}")
    print(f"  monlist∩DNS (latest): {count} IPs = {fraction:.3f}")
