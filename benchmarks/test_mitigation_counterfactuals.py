"""Counterfactual benchmarks: the mitigation levers the paper could only
speculate about (§6.4's notification causality, §1's BCP38 remark, §7.1's
rate limits)."""

import numpy as np

from repro.mitigation import (
    Bcp38Policy,
    apply_rate_limit,
    filter_attacks,
    notified_remediation_model,
)
from repro.util import date_to_sim


def test_counterfactual_notification(benchmark):
    """Without the CERT/operator notification campaign, the vulnerable pool
    would have been several times larger by mid-March."""

    def survival_pair():
        with_campaign = notified_remediation_model(with_campaign=True)
        without = notified_remediation_model(with_campaign=False)
        t = date_to_sim(2014, 3, 14)
        return with_campaign.curve.value_at(t), without.curve.value_at(t)

    s_with, s_without = benchmark(survival_pair)
    assert s_without > 1.5 * s_with
    print(
        f"\nCounterfactual notification: mid-March survival {s_with:.3f} (observed) vs "
        f"{s_without:.3f} (no campaign) — {s_without / s_with:.1f}x more amplifiers"
    )


def test_counterfactual_bcp38(benchmark, world):
    """SAV adoption removes attack volume proportionally: at 50% adoption,
    roughly half of the February wave never happens."""

    def sweep():
        results = {}
        for adoption in (0.0, 0.25, 0.5, 0.75):
            delivered, blocked = filter_attacks(world.attacks, Bcp38Policy(adoption))
            volume = sum(a.target_bps * a.duration for a in delivered)
            results[adoption] = (len(delivered), volume)
        return results

    results = benchmark(sweep)
    base_count, base_volume = results[0.0]
    counts = [results[a][0] for a in (0.0, 0.25, 0.5, 0.75)]
    assert counts == sorted(counts, reverse=True)
    mid_count, mid_volume = results[0.5]
    assert 0.3 < mid_count / base_count < 0.7

    print("\nCounterfactual BCP38 (adoption: attacks, volume fraction):")
    for adoption, (count, volume) in results.items():
        print(f"  {adoption:.2f}: {count:>6} attacks, {volume / base_volume:.2f} of volume")


def test_counterfactual_merit_rate_limit(benchmark, world):
    """§7.1: Merit's NTP rate limits — how much attack egress a 20 Mbps cap
    deployed at the late-December onset would have absorbed."""
    merit = world.isp.sites["merit"]
    activation = int((date_to_sim(2013, 12, 20) - merit.start) // 3600)

    result = benchmark(apply_rate_limit, merit.ntp_out, 20e6, activation)
    assert result.dropped_fraction > 0.05
    assert result.limited.max() <= 20e6 / 8 * 3600 + 1e-6 or result.activation_hour > 0
    peak_before = merit.hourly_mbps(merit.ntp_out).max()
    peak_after = merit.hourly_mbps(result.limited)[activation:].max()
    assert peak_after < peak_before

    print(
        f"\nCounterfactual rate limit: {100 * result.dropped_fraction:.0f}% of NTP egress "
        f"absorbed; peak {peak_before:.1f} -> {peak_after:.1f} MB/s"
    )
